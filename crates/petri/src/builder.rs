//! Incremental construction of [`PetriNet`]s.

use crate::{Marking, PetriError, PetriNet, Place, PlaceId, Result, Transition, TransitionId};
use std::collections::HashSet;

/// Builder for [`PetriNet`] (C-BUILDER).
///
/// Places and transitions are declared first and arcs added afterwards; [`NetBuilder::build`]
/// freezes the net and derives the initial marking from the per-place token counts.
///
/// # Examples
///
/// The net of Figure 2 of the paper (`t1 →² p1 → t2 →² p2 → t3` … weights on the
/// consuming side):
///
/// ```
/// use fcpn_petri::NetBuilder;
///
/// # fn main() -> Result<(), fcpn_petri::PetriError> {
/// let mut b = NetBuilder::new("figure2");
/// let t1 = b.transition("t1");
/// let p1 = b.place("p1", 0);
/// let t2 = b.transition("t2");
/// let p2 = b.place("p2", 0);
/// let t3 = b.transition("t3");
/// b.arc_t_p(t1, p1, 1)?;
/// b.arc_p_t(p1, t2, 2)?;
/// b.arc_t_p(t2, p2, 1)?;
/// b.arc_p_t(p2, t3, 2)?;
/// let net = b.build()?;
/// assert_eq!(net.transition_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
    arcs_pt: Vec<(PlaceId, TransitionId, u64)>,
    arcs_tp: Vec<(TransitionId, PlaceId, u64)>,
    names: HashSet<String>,
    errors: Vec<PetriError>,
}

impl NetBuilder {
    /// Creates an empty builder for a net called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares a place with an initial token count and returns its identifier.
    ///
    /// Duplicate names are recorded and reported by [`NetBuilder::build`].
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u64) -> PlaceId {
        let name = name.into();
        if !self.names.insert(name.clone()) {
            self.errors.push(PetriError::DuplicateName(name.clone()));
        }
        let id = PlaceId::new(self.places.len());
        self.places.push(Place {
            name,
            initial_tokens,
        });
        id
    }

    /// Declares a transition and returns its identifier.
    ///
    /// Duplicate names are recorded and reported by [`NetBuilder::build`].
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionId {
        let name = name.into();
        if !self.names.insert(name.clone()) {
            self.errors.push(PetriError::DuplicateName(name.clone()));
        }
        let id = TransitionId::new(self.transitions.len());
        self.transitions.push(Transition { name });
        id
    }

    /// Adds an arc from `place` to `transition` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is zero, either endpoint is unknown, or the arc was
    /// already declared.
    pub fn arc_p_t(&mut self, place: PlaceId, transition: TransitionId, weight: u64) -> Result<()> {
        self.check(place, transition, weight)?;
        if self
            .arcs_pt
            .iter()
            .any(|&(p, t, _)| p == place && t == transition)
        {
            return Err(PetriError::DuplicateArc(format!("{place} -> {transition}")));
        }
        self.arcs_pt.push((place, transition, weight));
        Ok(())
    }

    /// Adds an arc from `transition` to `place` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is zero, either endpoint is unknown, or the arc was
    /// already declared.
    pub fn arc_t_p(&mut self, transition: TransitionId, place: PlaceId, weight: u64) -> Result<()> {
        self.check(place, transition, weight)?;
        if self
            .arcs_tp
            .iter()
            .any(|&(t, p, _)| p == place && t == transition)
        {
            return Err(PetriError::DuplicateArc(format!("{transition} -> {place}")));
        }
        self.arcs_tp.push((transition, place, weight));
        Ok(())
    }

    /// Convenience helper: connects `from` to `to` through a fresh intermediate place with
    /// unit weights (the common "FIFO-less channel" pattern of dataflow-style nets).
    ///
    /// Returns the identifier of the new place.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`NetBuilder::arc_t_p`] / [`NetBuilder::arc_p_t`].
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        from: TransitionId,
        to: TransitionId,
        initial_tokens: u64,
    ) -> Result<PlaceId> {
        let p = self.place(name, initial_tokens);
        self.arc_t_p(from, p, 1)?;
        self.arc_p_t(p, to, 1)?;
        Ok(p)
    }

    /// Like [`NetBuilder::channel`] but with explicit produce / consume weights, for
    /// multirate links.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`NetBuilder::arc_t_p`] / [`NetBuilder::arc_p_t`].
    pub fn channel_weighted(
        &mut self,
        name: impl Into<String>,
        from: TransitionId,
        produce: u64,
        to: TransitionId,
        consume: u64,
        initial_tokens: u64,
    ) -> Result<PlaceId> {
        let p = self.place(name, initial_tokens);
        self.arc_t_p(from, p, produce)?;
        self.arc_p_t(p, to, consume)?;
        Ok(p)
    }

    fn check(&self, place: PlaceId, transition: TransitionId, weight: u64) -> Result<()> {
        if weight == 0 {
            return Err(PetriError::ZeroWeightArc);
        }
        if place.index() >= self.places.len() {
            return Err(PetriError::UnknownPlace(place));
        }
        if transition.index() >= self.transitions.len() {
            return Err(PetriError::UnknownTransition(transition));
        }
        Ok(())
    }

    /// Number of places declared so far.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions declared so far.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Freezes the builder into an immutable [`PetriNet`].
    ///
    /// # Errors
    ///
    /// Returns the first deferred error (duplicate names) recorded during construction.
    pub fn build(self) -> Result<PetriNet> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        let mut pre = vec![Vec::new(); self.transitions.len()];
        let mut post = vec![Vec::new(); self.transitions.len()];
        let mut place_in = vec![Vec::new(); self.places.len()];
        let mut place_out = vec![Vec::new(); self.places.len()];
        for (p, t, w) in self.arcs_pt {
            pre[t.index()].push((p, w));
            place_out[p.index()].push((t, w));
        }
        for (t, p, w) in self.arcs_tp {
            post[t.index()].push((p, w));
            place_in[p.index()].push((t, w));
        }
        let initial_marking =
            Marking::from_vec(self.places.iter().map(|p| p.initial_tokens).collect());
        let delta = crate::net::compute_delta(&pre, &post);
        Ok(PetriNet {
            name: self.name,
            places: self.places,
            transitions: self.transitions,
            pre,
            post,
            place_in,
            place_out,
            delta,
            initial_marking,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_net() {
        let net = NetBuilder::new("empty").build().unwrap();
        assert_eq!(net.place_count(), 0);
        assert_eq!(net.transition_count(), 0);
        assert_eq!(net.name(), "empty");
    }

    #[test]
    fn duplicate_names_are_rejected_at_build() {
        let mut b = NetBuilder::new("dup");
        b.place("x", 0);
        b.transition("x");
        let err = b.build().unwrap_err();
        assert_eq!(err, PetriError::DuplicateName("x".to_string()));
    }

    #[test]
    fn zero_weight_arcs_are_rejected() {
        let mut b = NetBuilder::new("zero");
        let p = b.place("p", 0);
        let t = b.transition("t");
        assert_eq!(b.arc_p_t(p, t, 0).unwrap_err(), PetriError::ZeroWeightArc);
        assert_eq!(b.arc_t_p(t, p, 0).unwrap_err(), PetriError::ZeroWeightArc);
    }

    #[test]
    fn duplicate_arcs_are_rejected() {
        let mut b = NetBuilder::new("dup-arc");
        let p = b.place("p", 0);
        let t = b.transition("t");
        b.arc_p_t(p, t, 1).unwrap();
        assert!(matches!(
            b.arc_p_t(p, t, 2),
            Err(PetriError::DuplicateArc(_))
        ));
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let mut b = NetBuilder::new("unknown");
        let p = b.place("p", 0);
        let t = b.transition("t");
        assert!(matches!(
            b.arc_p_t(PlaceId::new(9), t, 1),
            Err(PetriError::UnknownPlace(_))
        ));
        assert!(matches!(
            b.arc_t_p(TransitionId::new(9), p, 1),
            Err(PetriError::UnknownTransition(_))
        ));
    }

    #[test]
    fn channel_helpers() {
        let mut b = NetBuilder::new("chan");
        let a = b.transition("a");
        let c = b.transition("c");
        let p = b.channel("buf", a, c, 1).unwrap();
        let q = b.channel_weighted("buf2", a, 3, c, 2, 0).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.arc_weight_tp(a, p), 1);
        assert_eq!(net.arc_weight_pt(p, c), 1);
        assert_eq!(net.arc_weight_tp(a, q), 3);
        assert_eq!(net.arc_weight_pt(q, c), 2);
        assert_eq!(net.initial_marking().tokens(p), 1);
    }

    #[test]
    fn initial_marking_follows_place_declarations() {
        let mut b = NetBuilder::new("mark");
        b.place("a", 2);
        b.place("b", 0);
        b.place("c", 7);
        let net = b.build().unwrap();
        assert_eq!(net.initial_marking().as_slice(), &[2, 0, 7]);
    }
}
