//! The arena-interned state-space engine.
//!
//! This module is the performance substrate behind every explicit-state analysis in the
//! crate (reachability, deadlock, liveness, schedule validation). Where the naive
//! explorer ([`ReachabilityGraph::explore_naive`](crate::analysis::ReachabilityGraph::explore_naive))
//! clones a full [`Marking`] per expansion and hashes whole token vectors into a
//! `HashMap<Marking, usize>`, the engine here:
//!
//! * stores every discovered marking contiguously in **one flat `Vec<u64>` token arena**,
//!   addressed by dense `u32` state ids — no per-state allocation, no pointer chasing;
//! * interns states through an open-addressing **hash-of-slice table** that stores only
//!   `(hash, id)` pairs and compares candidate slices directly against the arena — a
//!   successor marking is hashed exactly once, in its scratch buffer, before any copy;
//! * fires transitions through the unchecked fast path
//!   ([`PetriNet::fire_into`](crate::PetriNet::fire_into)) driven by precomputed
//!   per-transition delta rows — no id validation, no marking-length check, no double
//!   enabledness scan per firing;
//! * exposes the reachability graph as **CSR forward/backward adjacency**, so
//!   [`successors`](StateSpace::successors) is O(out-degree),
//!   [`dead_states`](StateSpace::dead_states) is O(V) and
//!   [`can_eventually_fire`](StateSpace::can_eventually_fire) is a single O(V+E)
//!   backward traversal instead of an O(V·E) fixpoint.
//!
//! The exploration order and truncation semantics (state budget, per-place token
//! cut-off) are **bit-for-bit identical** to the naive explorer: both assign the same
//! state ids, discover the same edges in the same order and report the same frontier.
//! `tests/properties.rs` holds that equivalence over the gallery nets and randomly
//! generated nets.
//!
//! # Example
//!
//! ```
//! use fcpn_petri::{gallery, analysis::ReachabilityOptions, statespace::StateSpace};
//!
//! let net = gallery::marked_ring(6, 3);
//! let space = StateSpace::explore(&net, ReachabilityOptions::default());
//! assert!(space.is_complete());
//! assert_eq!(space.state_count(), 56); // C(6+3-1, 6-1) distributions of 3 tokens
//! assert!(space.dead_states().is_empty());
//! ```

use crate::analysis::ReachabilityOptions;
use crate::{Marking, PetriNet, TransitionId};

/// Dense identifier of a discovered state; index 0 is the initial marking.
pub type StateId = u32;

const EMPTY_SLOT: u32 = u32::MAX;

/// SplitMix64 finalizer: spreads an accumulated sum over all 64 bits before probing.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-place Zobrist-style multiplier, a pure function of the place index so every
/// component (explorer, arena, compatibility view) hashes markings identically without
/// sharing state.
#[inline]
fn place_key(place: usize) -> u64 {
    mix((place as u64).wrapping_add(0x9e37_79b9_7f4a_7c15)) | 1
}

/// Raw additive marking hash: `Σ tokens[p] · key(p)` (wrapping).
///
/// Additivity is the point — firing a transition shifts the raw hash by a constant
/// (`Σ delta[p] · key(p)`), so the explorer updates successor hashes in O(1) from the
/// parent instead of rehashing the whole token vector.
#[inline]
fn raw_hash(tokens: &[u64]) -> u64 {
    tokens.iter().enumerate().fold(0u64, |h, (p, &k)| {
        h.wrapping_add(k.wrapping_mul(place_key(p)))
    })
}

/// The table hash of a token slice: finalized raw hash.
#[inline]
fn hash_tokens(tokens: &[u64]) -> u64 {
    mix(raw_hash(tokens))
}

/// Open-addressing interner mapping token slices to state ids.
///
/// Only `(hash, id)` pairs live in the table; the token data itself stays in the arena,
/// so growth and probing never touch markings, and equality is checked against the arena
/// slice only on a hash hit.
#[derive(Debug, Clone, Default)]
pub(crate) struct SliceTable {
    /// `(hash, id)` per slot, `id == EMPTY_SLOT` marking vacancy. One combined array so
    /// a probe touches a single cache line per slot.
    entries: Vec<(u64, u32)>,
    len: usize,
}

enum Probe {
    Found(StateId),
    Vacant(usize),
}

impl SliceTable {
    fn with_capacity(states: usize) -> Self {
        let capacity = (states * 2).next_power_of_two().max(16);
        SliceTable {
            entries: vec![(0, EMPTY_SLOT); capacity],
            len: 0,
        }
    }

    /// Finds `tokens` in the table, or the slot where it belongs.
    ///
    /// `state_of` resolves a stored id to its arena slice for the equality check.
    fn probe<'a>(
        &self,
        hash: u64,
        tokens: &[u64],
        state_of: impl Fn(StateId) -> &'a [u64],
    ) -> Probe {
        let mask = self.entries.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let (stored_hash, id) = self.entries[slot];
            if id == EMPTY_SLOT {
                return Probe::Vacant(slot);
            }
            if stored_hash == hash && state_of(id) == tokens {
                return Probe::Found(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, id: StateId) {
        self.entries[slot] = (hash, id);
        self.len += 1;
    }

    fn needs_growth(&self) -> bool {
        // Resize at 50% load so probe chains stay short.
        self.len * 2 >= self.entries.len()
    }

    /// Doubles the table; only the stored hashes are needed, never the token data.
    fn grow(&mut self) {
        let capacity = self.entries.len() * 2;
        let mask = capacity - 1;
        let mut entries = vec![(0u64, EMPTY_SLOT); capacity];
        for &(h, id) in &self.entries {
            if id == EMPTY_SLOT {
                continue;
            }
            let mut slot = (h as usize) & mask;
            while entries[slot].1 != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            entries[slot] = (h, id);
        }
        self.entries = entries;
    }

    /// Builds a table over markings already held in a `Vec<Marking>` (used by the
    /// compatibility view and the naive explorer).
    pub(crate) fn index_markings(markings: &[Marking]) -> Self {
        let mut table = SliceTable::with_capacity(markings.len().max(1));
        for (i, m) in markings.iter().enumerate() {
            let hash = hash_tokens(m.as_slice());
            if let Probe::Vacant(slot) =
                table.probe(hash, m.as_slice(), |id| markings[id as usize].as_slice())
            {
                table.insert_at(slot, hash, i as u32);
            }
        }
        table
    }

    /// Looks `tokens` up against externally stored markings.
    pub(crate) fn find<'a>(
        &self,
        tokens: &[u64],
        state_of: impl Fn(StateId) -> &'a [u64],
    ) -> Option<StateId> {
        match self.probe(hash_tokens(tokens), tokens, state_of) {
            Probe::Found(id) => Some(id),
            Probe::Vacant(_) => None,
        }
    }
}

/// A growable arena of equal-length token vectors addressed by [`StateId`].
///
/// Used directly by analyses that need interned marking storage without the full graph
/// (e.g. the boundedness search), and internally by [`StateSpace`].
#[derive(Debug, Clone)]
pub struct MarkingArena {
    places: usize,
    tokens: Vec<u64>,
    table: SliceTable,
}

impl MarkingArena {
    /// Creates an empty arena for markings over `places` places.
    pub fn new(places: usize) -> Self {
        MarkingArena {
            places,
            tokens: Vec::with_capacity(places * 64),
            table: SliceTable::with_capacity(64),
        }
    }

    /// Number of interned markings.
    pub fn len(&self) -> usize {
        self.table.len
    }

    /// Returns `true` if no marking has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The token slice of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`MarkingArena::intern`].
    #[inline]
    pub fn state(&self, id: StateId) -> &[u64] {
        let start = id as usize * self.places;
        &self.tokens[start..start + self.places]
    }

    /// Interns `tokens`, returning the state id and whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` does not have one entry per place.
    pub fn intern(&mut self, tokens: &[u64]) -> (StateId, bool) {
        assert_eq!(tokens.len(), self.places, "marking length mismatch");
        if self.table.needs_growth() {
            self.table.grow();
        }
        let hash = hash_tokens(tokens);
        let places = self.places;
        let arena = &self.tokens;
        match self.table.probe(hash, tokens, |id| {
            let start = id as usize * places;
            &arena[start..start + places]
        }) {
            Probe::Found(id) => (id, false),
            Probe::Vacant(slot) => {
                let id = self.len() as StateId;
                self.tokens.extend_from_slice(tokens);
                self.table.insert_at(slot, hash, id);
                (id, true)
            }
        }
    }

    /// Looks `tokens` up without inserting.
    pub fn find(&self, tokens: &[u64]) -> Option<StateId> {
        if tokens.len() != self.places {
            return None;
        }
        self.table.find(tokens, |id| {
            let start = id as usize * self.places;
            &self.tokens[start..start + self.places]
        })
    }
}

/// The arena-interned reachability graph of a marked net.
///
/// Construction ([`StateSpace::explore`]) is a breadth-first enumeration with the same
/// budget/cut-off semantics as [`ReachabilityOptions`]; queries run over CSR adjacency.
#[derive(Debug)]
pub struct StateSpace {
    places: usize,
    arena: Vec<u64>,
    table: SliceTable,
    /// CSR row offsets into `edge_to`/`edge_transition`; row `s` holds the out-edges of
    /// state `s` in transition-index order.
    fwd_offsets: Vec<u32>,
    edge_to: Vec<u32>,
    edge_transition: Vec<u32>,
    /// Backward CSR, built lazily on the first predecessor-side query so pure
    /// explorations don't pay for it.
    back: std::sync::OnceLock<BackCsr>,
    complete: bool,
    frontier: Vec<StateId>,
}

/// Reverse adjacency in CSR form: incoming edges of each state.
#[derive(Debug, Clone)]
struct BackCsr {
    offsets: Vec<u32>,
    from: Vec<u32>,
    transition: Vec<u32>,
}

impl Clone for StateSpace {
    fn clone(&self) -> Self {
        let back = std::sync::OnceLock::new();
        if let Some(b) = self.back.get() {
            let _ = back.set(b.clone());
        }
        StateSpace {
            places: self.places,
            arena: self.arena.clone(),
            table: self.table.clone(),
            fwd_offsets: self.fwd_offsets.clone(),
            edge_to: self.edge_to.clone(),
            edge_transition: self.edge_transition.clone(),
            back,
            complete: self.complete,
            frontier: self.frontier.clone(),
        }
    }
}

impl StateSpace {
    /// Explores the state space of `net` from its initial marking.
    pub fn explore(net: &PetriNet, options: ReachabilityOptions) -> Self {
        Self::explore_from(net, net.initial_marking().clone(), options)
    }

    /// Explores the state space of `net` from an arbitrary marking.
    ///
    /// The hot loop works entirely in place: the current state's tokens sit in one
    /// scratch buffer, each enabled transition's precomputed delta row is applied to it,
    /// the successor is probed (its hash derived in O(1) from the parent's via the
    /// transition's constant hash shift), and the delta is reverted — the only per-state
    /// copies are one read from the arena on expansion and one append on insertion.
    ///
    /// # Panics
    ///
    /// Panics if `initial` does not have one entry per place of `net`.
    pub fn explore_from(net: &PetriNet, initial: Marking, options: ReachabilityOptions) -> Self {
        let places = net.place_count();
        assert_eq!(initial.len(), places, "marking length mismatch");

        // Flatten the per-transition input arcs and delta rows into CSR arrays, and
        // precompute each transition's constant raw-hash shift.
        let transition_count = net.transition_count();
        let mut pre_offsets: Vec<u32> = Vec::with_capacity(transition_count + 1);
        let mut pre_rows: Vec<(u32, u64)> = Vec::new();
        let mut delta_offsets: Vec<u32> = Vec::with_capacity(transition_count + 1);
        let mut delta_rows: Vec<(u32, i64)> = Vec::new();
        let mut hash_shift: Vec<u64> = Vec::with_capacity(transition_count);
        pre_offsets.push(0);
        delta_offsets.push(0);
        for t in net.transitions() {
            for &(p, w) in net.inputs(t) {
                pre_rows.push((p.index() as u32, w));
            }
            pre_offsets.push(pre_rows.len() as u32);
            let mut shift = 0u64;
            for &(p, d) in net.delta_row(t) {
                delta_rows.push((p.index() as u32, d));
                shift = shift.wrapping_add((d as u64).wrapping_mul(place_key(p.index())));
            }
            delta_offsets.push(delta_rows.len() as u32);
            hash_shift.push(shift);
        }

        // Candidate generation: only transitions consuming from a currently marked place
        // (plus the always-enabled source transitions) can be enabled, so each state
        // gathers its candidates by OR-ing the consumer bitmasks of its marked places
        // and walking the set bits — which come out in transition-index order for free,
        // keeping the edge order identical to the naive explorer's full scan.
        let mask_words = transition_count.div_ceil(64).max(1);
        let mut consumer_masks: Vec<u64> = vec![0; places * mask_words];
        for p in net.places() {
            for &(t, _) in net.consumers(p) {
                consumer_masks[p.index() * mask_words + t.index() / 64] |= 1 << (t.index() % 64);
            }
        }
        // Source transitions (empty pre-set) are always enabled, so they seed every
        // state's candidate mask.
        let mut source_mask: Vec<u64> = vec![0; mask_words];
        for t in net.source_transitions() {
            source_mask[t.index() / 64] |= 1 << (t.index() % 64);
        }
        let mut candidate_mask: Vec<u64> = vec![0; mask_words];

        let mut arena: Vec<u64> = Vec::with_capacity(places.max(1) * 256);
        arena.extend_from_slice(initial.as_slice());
        let mut raw_hashes: Vec<u64> = Vec::with_capacity(256);
        raw_hashes.push(raw_hash(initial.as_slice()));
        let mut table = SliceTable::with_capacity(256);
        if let Probe::Vacant(slot) = table.probe(mix(raw_hashes[0]), initial.as_slice(), |_| &[]) {
            table.insert_at(slot, mix(raw_hashes[0]), 0);
        }

        let mut fwd_offsets: Vec<u32> = Vec::with_capacity(256);
        fwd_offsets.push(0);
        let mut edge_to: Vec<u32> = Vec::new();
        let mut edge_transition: Vec<u32> = Vec::new();
        let mut frontier: Vec<StateId> = Vec::new();
        let mut complete = true;

        let mut current: Vec<u64> = vec![0; places];

        // BFS. State ids are assigned in discovery order and the queue is FIFO, so the
        // expansion order *is* the id order — no explicit queue needed, and the edge list
        // comes out sorted by source (CSR rows for free).
        let mut state_count = 1usize;
        let mut cursor = 0usize;
        'states: while cursor < state_count {
            let id = cursor;
            cursor += 1;
            current.copy_from_slice(&arena[id * places..(id + 1) * places]);
            let current_hash = raw_hashes[id];

            // One fused pass: the token cut-off check and the candidate-mask gathering
            // from marked places.
            candidate_mask.copy_from_slice(&source_mask);
            let mut max_tokens = 0u64;
            for (p, &count) in current.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                max_tokens = max_tokens.max(count);
                let row = &consumer_masks[p * mask_words..(p + 1) * mask_words];
                for (acc, &bits) in candidate_mask.iter_mut().zip(row) {
                    *acc |= bits;
                }
            }
            if max_tokens > options.max_tokens_per_place {
                frontier.push(id as StateId);
                complete = false;
                fwd_offsets.push(edge_to.len() as u32);
                continue 'states;
            }

            for (word, &mask_bits) in candidate_mask.iter().enumerate() {
                let mut bits = mask_bits;
                'transitions: while bits != 0 {
                    let t = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let pre = &pre_rows[pre_offsets[t] as usize..pre_offsets[t + 1] as usize];
                    if !pre.iter().all(|&(p, w)| current[p as usize] >= w) {
                        continue 'transitions;
                    }
                    // Fire in place; on (astronomically unlikely) token overflow, revert the
                    // applied prefix and drop the edge, mirroring the safe path's
                    // TokenOverflow behaviour.
                    let delta =
                        &delta_rows[delta_offsets[t] as usize..delta_offsets[t + 1] as usize];
                    for (applied, &(p, d)) in delta.iter().enumerate() {
                        let slot = &mut current[p as usize];
                        if d >= 0 {
                            match slot.checked_add(d as u64) {
                                Some(v) => *slot = v,
                                None => {
                                    for &(q, e) in &delta[..applied] {
                                        let undo = &mut current[q as usize];
                                        *undo = undo.wrapping_sub(e as u64);
                                    }
                                    continue 'transitions;
                                }
                            }
                        } else {
                            *slot -= d.unsigned_abs();
                        }
                    }
                    let successor_hash = current_hash.wrapping_add(hash_shift[t]);
                    let mixed = mix(successor_hash);
                    let target = match table.probe(mixed, &current, |s| {
                        let start = s as usize * places;
                        &arena[start..start + places]
                    }) {
                        Probe::Found(existing) => Some(existing),
                        Probe::Vacant(slot) => {
                            if state_count >= options.max_markings {
                                complete = false;
                                None
                            } else {
                                let new_id = state_count as StateId;
                                arena.extend_from_slice(&current);
                                raw_hashes.push(successor_hash);
                                table.insert_at(slot, mixed, new_id);
                                // Growing after insertion keeps the load factor below ~50%,
                                // so every probe is guaranteed a vacant slot.
                                if table.needs_growth() {
                                    table.grow();
                                }
                                state_count += 1;
                                Some(new_id)
                            }
                        }
                    };
                    // Revert the delta so `current` is the expanded state again.
                    for &(p, d) in delta {
                        let slot = &mut current[p as usize];
                        *slot = slot.wrapping_sub(d as u64);
                    }
                    if let Some(target) = target {
                        edge_to.push(target);
                        edge_transition.push(t as u32);
                    }
                }
            }
            fwd_offsets.push(edge_to.len() as u32);
        }

        StateSpace {
            places,
            arena,
            table,
            fwd_offsets,
            edge_to,
            edge_transition,
            back: std::sync::OnceLock::new(),
            complete,
            frontier,
        }
    }

    /// The backward CSR, built by counting sort over the forward edges on first use.
    fn back(&self) -> &BackCsr {
        self.back.get_or_init(|| {
            let state_count = self.state_count();
            let edge_count = self.edge_to.len();
            let mut offsets = vec![0u32; state_count + 1];
            for &to in &self.edge_to {
                offsets[to as usize + 1] += 1;
            }
            for i in 0..state_count {
                offsets[i + 1] += offsets[i];
            }
            let mut from = vec![0u32; edge_count];
            let mut transition = vec![0u32; edge_count];
            let mut fill = offsets.clone();
            for source in 0..state_count {
                let (start, end) = (
                    self.fwd_offsets[source] as usize,
                    self.fwd_offsets[source + 1] as usize,
                );
                for e in start..end {
                    let slot = fill[self.edge_to[e] as usize] as usize;
                    from[slot] = source as u32;
                    transition[slot] = self.edge_transition[e];
                    fill[self.edge_to[e] as usize] += 1;
                }
            }
            BackCsr {
                offsets,
                from,
                transition,
            }
        })
    }

    /// Number of distinct markings discovered.
    pub fn state_count(&self) -> usize {
        self.fwd_offsets.len() - 1
    }

    /// Number of firing edges discovered.
    pub fn edge_count(&self) -> usize {
        self.edge_to.len()
    }

    /// `true` if the whole reachable state space was enumerated within the budget and
    /// token cut-off.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// States that were discovered but not expanded because of the token cut-off.
    pub fn frontier(&self) -> &[StateId] {
        &self.frontier
    }

    /// The token slice of state `id` — a view into the arena, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn tokens(&self, id: StateId) -> &[u64] {
        let start = id as usize * self.places;
        &self.arena[start..start + self.places]
    }

    /// The marking of state `id` as an owned [`Marking`].
    pub fn marking(&self, id: StateId) -> Marking {
        Marking::from_vec(self.tokens(id).to_vec())
    }

    /// Iterates over all discovered markings as token slices, in id order.
    pub fn states(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.state_count()).map(|s| self.tokens(s as StateId))
    }

    /// O(1) membership test through the interner.
    pub fn contains(&self, marking: &Marking) -> bool {
        self.index_of(marking).is_some()
    }

    /// O(1) id lookup through the interner.
    pub fn index_of(&self, marking: &Marking) -> Option<StateId> {
        self.index_of_tokens(marking.as_slice())
    }

    /// O(1) id lookup of a raw token slice.
    pub fn index_of_tokens(&self, tokens: &[u64]) -> Option<StateId> {
        if tokens.len() != self.places {
            return None;
        }
        self.table.find(tokens, |id| {
            let start = id as usize * self.places;
            &self.arena[start..start + self.places]
        })
    }

    /// Outgoing edges of `state` as `(transition, successor)` pairs — O(out-degree).
    pub fn successors(&self, state: StateId) -> impl Iterator<Item = (TransitionId, StateId)> + '_ {
        let (start, end) = (
            self.fwd_offsets[state as usize] as usize,
            self.fwd_offsets[state as usize + 1] as usize,
        );
        self.edge_transition[start..end]
            .iter()
            .zip(self.edge_to[start..end].iter())
            .map(|(&t, &to)| (TransitionId::new(t as usize), to))
    }

    /// Incoming edges of `state` as `(transition, predecessor)` pairs — O(in-degree)
    /// (plus a one-off O(V + E) backward-CSR build on the first predecessor query).
    pub fn predecessors(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (TransitionId, StateId)> + '_ {
        let back = self.back();
        let (start, end) = (
            back.offsets[state as usize] as usize,
            back.offsets[state as usize + 1] as usize,
        );
        back.transition[start..end]
            .iter()
            .zip(back.from[start..end].iter())
            .map(|(&t, &from)| (TransitionId::new(t as usize), from))
    }

    /// All edges in source order as `(from, transition, to)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (StateId, TransitionId, StateId)> + '_ {
        (0..self.state_count()).flat_map(move |s| {
            self.successors(s as StateId)
                .map(move |(t, to)| (s as StateId, t, to))
        })
    }

    /// Out-degree of `state`.
    pub fn out_degree(&self, state: StateId) -> usize {
        (self.fwd_offsets[state as usize + 1] - self.fwd_offsets[state as usize]) as usize
    }

    /// States with no outgoing edge — a single O(V) pass over the CSR row offsets. Only
    /// meaningful when the space is [`complete`](StateSpace::is_complete).
    pub fn dead_states(&self) -> Vec<StateId> {
        (0..self.state_count() as StateId)
            .filter(|&s| self.out_degree(s) == 0)
            .collect()
    }

    /// The largest token count observed in any place across all discovered states.
    pub fn max_tokens_observed(&self) -> u64 {
        self.arena[..self.state_count() * self.places]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// For every state, whether a state enabling `transition` is reachable from it.
    ///
    /// One scan to seed (states enabling the transition) plus one backward BFS over the
    /// CSR reverse adjacency: O(V + E) total, replacing the naive O(V·E) edge-list
    /// fixpoint.
    pub fn can_eventually_fire(&self, net: &PetriNet, transition: TransitionId) -> Vec<bool> {
        let n = self.state_count();
        let mut can = vec![false; n];
        let mut queue: Vec<StateId> = Vec::new();
        for (s, state) in can.iter_mut().enumerate() {
            if net.is_enabled_at(self.tokens(s as StateId), transition) {
                *state = true;
                queue.push(s as StateId);
            }
        }
        while let Some(s) = queue.pop() {
            for (_, pred) in self.predecessors(s) {
                if !can[pred as usize] {
                    can[pred as usize] = true;
                    queue.push(pred);
                }
            }
        }
        can
    }

    /// A shortest firing sequence from the initial state to `target`, reconstructed with
    /// a forward BFS over the CSR adjacency — O(V + E).
    pub fn path_to(&self, target: StateId) -> Vec<TransitionId> {
        let n = self.state_count();
        let mut prev: Vec<Option<(StateId, TransitionId)>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[0] = true;
        queue.push_back(0 as StateId);
        'bfs: while let Some(current) = queue.pop_front() {
            for (t, to) in self.successors(current) {
                if !visited[to as usize] {
                    visited[to as usize] = true;
                    prev[to as usize] = Some((current, t));
                    if to == target {
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        let mut trace = Vec::new();
        let mut cursor = target;
        while let Some((parent, t)) = prev[cursor as usize] {
            trace.push(t);
            cursor = parent;
        }
        trace.reverse();
        trace
    }

    pub(crate) fn into_parts(self) -> StateSpaceParts {
        StateSpaceParts {
            places: self.places,
            arena: self.arena,
            table: self.table,
            fwd_offsets: self.fwd_offsets,
            edge_to: self.edge_to,
            edge_transition: self.edge_transition,
            complete: self.complete,
            frontier: self.frontier,
        }
    }
}

/// Raw pieces handed to the `ReachabilityGraph` compatibility view.
pub(crate) struct StateSpaceParts {
    pub places: usize,
    pub arena: Vec<u64>,
    pub table: SliceTable,
    pub fwd_offsets: Vec<u32>,
    pub edge_to: Vec<u32>,
    pub edge_transition: Vec<u32>,
    pub complete: bool,
    pub frontier: Vec<StateId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gallery, NetBuilder};

    fn bounded_cycle() -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let p1 = b.place("p1", 1);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn explores_bounded_cycle_completely() {
        let net = bounded_cycle();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert!(space.is_complete());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.edge_count(), 2);
        assert!(space.dead_states().is_empty());
        assert_eq!(space.max_tokens_observed(), 1);
        assert!(space.contains(net.initial_marking()));
        assert_eq!(space.index_of(net.initial_marking()), Some(0));
        assert_eq!(space.tokens(0), net.initial_marking().as_slice());
    }

    #[test]
    fn successors_and_predecessors_are_inverse() {
        let net = gallery::marked_ring(5, 2);
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        for s in 0..space.state_count() as StateId {
            for (t, to) in space.successors(s) {
                assert!(space
                    .predecessors(to)
                    .any(|(bt, from)| bt == t && from == s));
            }
            for (t, from) in space.predecessors(s) {
                assert!(space.successors(from).any(|(ft, to)| ft == t && to == s));
            }
        }
        assert_eq!(
            space.edges().count(),
            space.edge_count(),
            "edges() covers the CSR"
        );
    }

    #[test]
    fn respects_marking_budget() {
        let net = bounded_cycle();
        let space = StateSpace::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1,
                max_tokens_per_place: 64,
            },
        );
        assert!(!space.is_complete());
        assert_eq!(space.state_count(), 1);
    }

    #[test]
    fn token_cutoff_populates_frontier() {
        let mut b = NetBuilder::new("source");
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        b.arc_t_p(t1, p, 1).unwrap();
        let net = b.build().unwrap();
        let space = StateSpace::explore(
            &net,
            ReachabilityOptions {
                max_markings: 1000,
                max_tokens_per_place: 5,
            },
        );
        assert!(!space.is_complete());
        assert!(!space.frontier().is_empty());
        assert!(space.max_tokens_observed() >= 5);
    }

    #[test]
    fn can_eventually_fire_matches_live_cycle() {
        let net = bounded_cycle();
        let t2 = net.transition_by_name("t2").unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert_eq!(space.can_eventually_fire(&net, t2), vec![true, true]);
    }

    #[test]
    fn path_to_reaches_dead_state() {
        let mut b = NetBuilder::new("oneshot");
        let start = b.place("start", 1);
        let t1 = b.transition("t1");
        let p = b.place("p", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(start, t1, 1).unwrap();
        b.arc_t_p(t1, p, 1).unwrap();
        b.arc_p_t(p, t2, 1).unwrap();
        let net = b.build().unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        let dead = space.dead_states();
        assert_eq!(dead.len(), 1);
        let trace = space.path_to(dead[0]);
        assert_eq!(trace, vec![t1, t2]);
    }

    #[test]
    fn marking_arena_interns_and_finds() {
        let mut arena = MarkingArena::new(3);
        assert!(arena.is_empty());
        let (a, new_a) = arena.intern(&[1, 0, 2]);
        let (b, new_b) = arena.intern(&[0, 0, 0]);
        let (a2, new_a2) = arena.intern(&[1, 0, 2]);
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.state(a), &[1, 0, 2]);
        assert_eq!(arena.find(&[0, 0, 0]), Some(b));
        assert_eq!(arena.find(&[9, 9, 9]), None);
        assert_eq!(arena.find(&[1, 0]), None);
    }

    #[test]
    fn interner_survives_growth() {
        let mut arena = MarkingArena::new(2);
        for i in 0..500u64 {
            arena.intern(&[i, i % 7]);
        }
        assert_eq!(arena.len(), 500);
        for i in 0..500u64 {
            let id = arena
                .find(&[i, i % 7])
                .expect("interned marking is findable");
            assert_eq!(arena.state(id), &[i, i % 7]);
        }
    }

    #[test]
    fn empty_net_has_single_state() {
        let net = NetBuilder::new("empty").build().unwrap();
        let space = StateSpace::explore(&net, ReachabilityOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.edge_count(), 0);
        assert!(space.is_complete());
        assert_eq!(space.dead_states(), vec![0]);
    }
}
