//! End-to-end tests of the daemon over real sockets: concurrency, bit-identical
//! agreement with direct library calls, backpressure, hostile input, shutdown.

use fcpn_petri::io::to_text;
use fcpn_petri::{gallery, PetriNet};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_serve::{
    schedule_response_body, Client, LoadSpec, RequestLimits, Server, ServerConfig, ServerHandle,
};
use std::time::Duration;

fn spawn(config: ServerConfig) -> ServerHandle {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .expect("daemon binds an ephemeral port")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(30)).expect("client connects")
}

fn expected_schedule_body(net: &PetriNet) -> String {
    schedule_response_body(
        net,
        &quasi_static_schedule(net, &QssOptions::default()).expect("valid input"),
    )
}

#[test]
fn serves_64_concurrent_schedule_requests_bit_identical_to_library() {
    // 16 workers + a 64-deep queue: 64 concurrent one-shot connections all fit in
    // flight, so none may be rejected and every body must equal the library's answer —
    // on the gallery nets and on the ATM case study.
    let handle = spawn(ServerConfig {
        workers: 16,
        queue_capacity: 64,
        ..ServerConfig::default()
    });
    let atm = fcpn_atm::AtmModel::build(fcpn_atm::AtmConfig::small()).expect("atm model builds");
    let nets: Vec<PetriNet> = vec![
        gallery::figure3a(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::choice_chain(5),
        atm.net.clone(),
    ];
    let expected: Vec<String> = nets.iter().map(expected_schedule_body).collect();
    let texts: Vec<String> = nets.iter().map(to_text).collect();

    // Warm the result cache sequentially so the concurrent burst below measures the
    // serving path, not 16 workers of one debug-mode ATM sweep each racing the same
    // cold key on a single-core CI host.
    {
        let mut warm = client(&handle);
        for (text, want) in texts.iter().zip(&expected) {
            let response = warm
                .request("POST", "/schedule", text.as_bytes())
                .expect("warm request");
            assert_eq!(response.status, 200);
            assert_eq!(&response.body, want, "warm body diverged");
        }
    }

    std::thread::scope(|scope| {
        for i in 0..64 {
            let handle = &handle;
            let texts = &texts;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = client(handle);
                let which = i % texts.len();
                let response = client
                    .request("POST", "/schedule", texts[which].as_bytes())
                    .expect("request completes");
                assert_eq!(response.status, 200, "request {i}");
                assert_eq!(response.body, expected[which], "request {i} body diverged");
            });
        }
    });
    handle.shutdown();
}

#[test]
fn saturation_returns_503_not_a_hang() {
    // One worker and a 2-deep queue: 8 connections opened before any request is sent
    // exceed in-flight capacity (1 + 2), so at least one must be shed with a 503 and
    // every connection must get a definite answer (no hang, no abort).
    let handle = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let text = to_text(&gallery::figure4());
    let outcomes: Vec<u16> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = handle.addr().to_string();
                let text = text.clone();
                scope.spawn(move || {
                    let mut client =
                        Client::connect(&addr, Duration::from_secs(30)).expect("connect");
                    // Hold the connection open so all 8 are in flight simultaneously
                    // before the single worker can drain any of them.
                    std::thread::sleep(Duration::from_millis(300));
                    match client.request("POST", "/schedule", text.as_bytes()) {
                        Ok(response) => response.status,
                        // A shed connection may already be closed by the time we write.
                        Err(_) => 503,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = outcomes.iter().filter(|&&s| s == 200).count();
    let shed = outcomes.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + shed, 8, "every connection got a definite outcome");
    assert!(shed >= 1, "expected shedding, got statuses {outcomes:?}");
    // Everything that made it into the queue must be served. Whether the worker had
    // already popped a connection when the burst arrived depends on scheduling (on a
    // single-core CI host it often has not), so the guaranteed floor is the queue
    // capacity alone.
    assert!(
        ok >= 2,
        "queued connections must still be served: {outcomes:?}"
    );
    handle.shutdown();
}

#[test]
fn keep_alive_connection_serves_many_requests_with_cache_hits() {
    let handle = spawn(ServerConfig::default());
    let net = gallery::figure5();
    let expected = expected_schedule_body(&net);
    let text = to_text(&net);
    let mut client = client(&handle);
    let mut dispositions = Vec::new();
    for _ in 0..10 {
        let response = client
            .request("POST", "/schedule", text.as_bytes())
            .expect("keep-alive request");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected);
        dispositions.push(response.header("x-fcpn-cache").unwrap_or("?").to_string());
    }
    assert_eq!(dispositions[0], "miss");
    assert!(
        dispositions[1..].iter().all(|d| d == "hit"),
        "repeat queries must hit the cache: {dispositions:?}"
    );
    handle.shutdown();
}

#[test]
fn load_generator_reports_latencies_and_hit_rate() {
    let handle = spawn(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let spec = LoadSpec {
        connections: 8,
        requests_per_connection: 8,
        target: "/schedule".into(),
        nets: vec![
            ("figure3a".into(), to_text(&gallery::figure3a())),
            ("figure5".into(), to_text(&gallery::figure5())),
        ],
        timeout: Duration::from_secs(30),
    };
    let report =
        fcpn_serve::load::run_load(&handle.addr().to_string(), &spec).expect("load run completes");
    assert_eq!(report.requests, 64);
    assert_eq!(
        report.ok, 64,
        "errors={} rejected={}",
        report.errors, report.rejected
    );
    assert!(report.p50_us > 0.0 && report.p95_us >= report.p50_us);
    // 64 requests over 2 distinct (net, options) keys: at least one miss per key, but
    // concurrent cold requests on the same key may each miss before the first insert
    // lands, so the split is a range, not an exact count.
    assert_eq!(report.cache_hits + report.cache_misses, 64);
    assert!(report.cache_misses >= 2, "misses {}", report.cache_misses);
    assert!(report.cache_hits >= 32, "hits {}", report.cache_hits);
    assert!(report.cache_hit_rate() >= 0.5);
    handle.shutdown();
}

#[test]
fn healthz_metrics_and_hostile_inputs() {
    let handle = spawn(ServerConfig {
        limits: RequestLimits {
            // Tiny caps so the guard paths trigger instantly.
            max_allocations: 8,
            ..RequestLimits::default()
        },
        http: fcpn_serve::HttpLimits {
            max_body_bytes: 4096,
            ..fcpn_serve::HttpLimits::default()
        },
        ..ServerConfig::default()
    });
    let mut c = client(&handle);

    let health = c.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));

    // Garbage net text: 400 with the offending line, connection stays usable.
    let bad = c
        .request("POST", "/schedule", b"net x\nfoo bar")
        .expect("bad net answered");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("line 2"));

    // Non-free-choice input: a typed 422 verdict, not a 500.
    let nfc = c
        .request(
            "POST",
            "/schedule",
            to_text(&gallery::figure1b()).as_bytes(),
        )
        .expect("nfc answered");
    assert_eq!(nfc.status, 422);

    // An allocation-budget blowup: typed 422 with the required count.
    let big = c
        .request(
            "POST",
            "/schedule",
            to_text(&gallery::choice_chain(8)).as_bytes(),
        )
        .expect("budget answered");
    assert_eq!(big.status, 422);
    assert!(big.body.contains("too many allocations"));

    // Oversized body: shed with 413.
    let huge = "#".repeat(8192);
    // The server may close right after writing the 413, so a transport error is also
    // acceptable; what matters is that it did not crash.
    if let Ok(response) = c.request("POST", "/schedule", huge.as_bytes()) {
        assert_eq!(response.status, 413);
    }

    // The daemon survived all of it.
    let mut c2 = client(&handle);
    let metrics = c2.request("GET", "/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
    assert!(value.get("requests_total").unwrap().as_u64().unwrap() >= 4);
    assert!(
        value
            .get("responses_client_error")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 2
    );
    handle.shutdown();
}

#[test]
fn per_request_thread_option_matches_sequential_answer() {
    // The sharded scheduler pins bit-identical outcomes for any thread count; the
    // daemon must preserve that through the options plumbing.
    let handle = spawn(ServerConfig::default());
    let net = gallery::choice_chain(6);
    let text = to_text(&net);
    let expected = expected_schedule_body(&net);
    let mut c = client(&handle);
    for query in ["/schedule", "/schedule?threads=2", "/schedule?threads=4"] {
        let response = c.request("POST", query, text.as_bytes()).expect("request");
        assert_eq!(response.status, 200, "{query}");
        assert_eq!(response.body, expected, "{query} diverged");
    }
    handle.shutdown();
}

#[test]
fn slow_loris_request_is_dropped_at_the_read_deadline() {
    // A client dripping head bytes under the socket read timeout must still lose its
    // worker at the per-request read deadline — otherwise `workers` cheap connections
    // would pin the whole pool.
    use std::io::{Read, Write};
    let handle = spawn(ServerConfig {
        request_read_deadline: Duration::from_millis(300),
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"POST /schedule HTTP/1.1\r\nContent-")
        .unwrap();
    // One byte every 100ms: each read succeeds within the 200ms socket timeout, but
    // the 300ms total deadline blows well before the head completes.
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(100));
        if stream.write_all(b"x").is_err() {
            break; // server already reset us — exactly what we want
        }
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) => {} // clean close: the worker was released
        Err(e)
            if !matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) => {} // reset: also released
        other => panic!("server kept the slow connection alive: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn metrics_exposes_cancellation_and_persistence_counters() {
    let handle = spawn(ServerConfig::default());
    let mut c = client(&handle);
    let metrics = c.request("GET", "/metrics", b"").expect("metrics");
    let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
    for key in [
        "cancelled_in_stage",
        "cache_evictions",
        "cache_bytes",
        "persist_recovered_entries",
        "persist_torn_tail_truncations",
    ] {
        assert!(
            value.get(key).and_then(|v| v.as_u64()).is_some(),
            "missing or non-numeric metrics key `{key}`"
        );
    }
    handle.shutdown();
}

#[test]
fn blown_deadline_cancels_the_sweep_mid_stage_with_a_503() {
    // choice_chain(12) has 2^12 = 4096 allocations — a sweep that takes far longer
    // than 1ms — so the armed token must abort it from *inside* the stage.
    let handle = spawn(ServerConfig::default());
    let text = to_text(&gallery::choice_chain(12));
    let mut c = client(&handle);
    let response = c
        .request(
            "POST",
            "/schedule?deadline_ms=1&cache=0&threads=1",
            text.as_bytes(),
        )
        .expect("cancelled request still gets an answer");
    assert_eq!(response.status, 503);
    let mut c2 = client(&handle);
    let metrics = c2.request("GET", "/metrics", b"").expect("metrics");
    let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
    assert!(
        value.get("cancelled_in_stage").unwrap().as_u64().unwrap() >= 1,
        "the 503 must come from an in-stage cancellation, not a between-stage check"
    );
    // The same request without the hostile deadline still computes fine: the
    // cancellation left no poisoned state behind.
    let ok = c2
        .request("POST", "/schedule?cache=0&threads=1", text.as_bytes())
        .expect("follow-up request");
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

#[test]
fn drain_finishes_in_flight_requests_before_stopping() {
    let handle = spawn(ServerConfig {
        drain_grace: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let addr = handle.addr().to_string();
    // choice_chain(10): slow enough (1024 allocations, debug build) that the drain
    // below starts while this request is still being computed.
    let text = to_text(&gallery::choice_chain(10));
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
        c.request("POST", "/schedule?cache=0", text.as_bytes())
            .expect("in-flight request completes through the drain")
    });
    std::thread::sleep(Duration::from_millis(100));
    handle.drain();
    let response = in_flight.join().expect("request thread");
    assert_eq!(
        response.status, 200,
        "drain must let the in-flight request finish"
    );
}

#[test]
fn persistent_cache_survives_restart_with_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("fcpn-daemon-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let net = gallery::figure5();
    let text = to_text(&net);
    let expected = expected_schedule_body(&net);

    let first_body = {
        let handle = spawn(config());
        let mut c = client(&handle);
        let response = c
            .request("POST", "/schedule", text.as_bytes())
            .expect("warm request");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected);
        handle.drain(); // flushes the logs
        response.body
    };

    let handle = spawn(config());
    let mut c = client(&handle);
    let metrics = c.request("GET", "/metrics", b"").expect("metrics");
    let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
    assert!(
        value
            .get("persist_recovered_entries")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1,
        "restart must reload the persisted entry"
    );
    let response = c
        .request("POST", "/schedule", text.as_bytes())
        .expect("post-restart request");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("x-fcpn-cache"),
        Some("hit"),
        "the recovered entry must serve the repeat query"
    );
    assert_eq!(response.body, first_body, "post-recovery bytes diverged");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_clean_and_port_is_released() {
    let handle = spawn(ServerConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
    assert_eq!(c.request("GET", "/healthz", b"").unwrap().status, 200);
    handle.shutdown();
    // The listener is gone: a fresh bind of the same port succeeds.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port was not released: {rebound:?}");
}
