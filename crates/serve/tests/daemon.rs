//! End-to-end tests of the daemon over real sockets: concurrency, bit-identical
//! agreement with direct library calls, backpressure, hostile input, shutdown.
//!
//! Every behavioural test runs against **both** front ends — the blocking
//! thread-per-connection path and (on Linux) the epoll reactor — via
//! [`for_each_front_end`]: the wire contract must not depend on which one is serving.
//! Reactor-only mechanics (idle timeouts, the connection gauge, pipelining, fanout)
//! get their own `#[cfg(target_os = "linux")]` tests at the bottom.

use fcpn_petri::io::to_text;
use fcpn_petri::{gallery, PetriNet};
use fcpn_qss::{quasi_static_schedule, QssOptions};
use fcpn_serve::{
    schedule_response_body, Client, LoadSpec, RequestLimits, Server, ServerConfig, ServerHandle,
};
use std::time::Duration;

/// Runs `test` once per available front end (threaded everywhere, reactor on Linux).
fn for_each_front_end(test: impl Fn(bool)) {
    test(false);
    #[cfg(target_os = "linux")]
    test(true);
}

fn spawn_on(reactor: bool, config: ServerConfig) -> ServerHandle {
    Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        reactor,
        ..config
    })
    .expect("daemon binds an ephemeral port")
}

fn client(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(30)).expect("client connects")
}

fn expected_schedule_body(net: &PetriNet) -> String {
    schedule_response_body(
        net,
        &quasi_static_schedule(net, &QssOptions::default()).expect("valid input"),
    )
}

#[test]
fn serves_64_concurrent_schedule_requests_bit_identical_to_library() {
    // 16 workers + a 64-deep queue: 64 concurrent one-shot connections all fit in
    // flight, so none may be rejected and every body must equal the library's answer —
    // on the gallery nets and on the ATM case study, on both front ends.
    let atm = fcpn_atm::AtmModel::build(fcpn_atm::AtmConfig::small()).expect("atm model builds");
    let nets: Vec<PetriNet> = vec![
        gallery::figure3a(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::choice_chain(5),
        atm.net.clone(),
    ];
    let expected: Vec<String> = nets.iter().map(expected_schedule_body).collect();
    let texts: Vec<String> = nets.iter().map(to_text).collect();

    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                workers: 16,
                queue_capacity: 64,
                ..ServerConfig::default()
            },
        );

        // Warm the result cache sequentially so the concurrent burst below measures
        // the serving path, not 16 workers of one debug-mode ATM sweep each racing the
        // same cold key on a single-core CI host.
        {
            let mut warm = client(&handle);
            for (text, want) in texts.iter().zip(&expected) {
                let response = warm
                    .request("POST", "/schedule", text.as_bytes())
                    .expect("warm request");
                assert_eq!(response.status, 200);
                assert_eq!(
                    &response.body, want,
                    "warm body diverged (reactor={reactor})"
                );
            }
        }

        std::thread::scope(|scope| {
            for i in 0..64 {
                let handle = &handle;
                let texts = &texts;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = client(handle);
                    let which = i % texts.len();
                    let response = client
                        .request("POST", "/schedule", texts[which].as_bytes())
                        .expect("request completes");
                    assert_eq!(response.status, 200, "request {i} (reactor={reactor})");
                    assert_eq!(
                        response.body, expected[which],
                        "request {i} body diverged (reactor={reactor})"
                    );
                });
            }
        });
        handle.shutdown();
    });
}

#[test]
fn saturation_returns_503_not_a_hang() {
    // One worker and a 2-deep queue: 8 connections opened before any request is sent
    // exceed in-flight capacity, so at least one must be shed with a 503 and every
    // connection must get a definite answer (no hang, no abort). Shed responses that
    // do arrive intact must carry the overload contract: Retry-After plus a JSON
    // error body, same shape as handler errors.
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                workers: 1,
                queue_capacity: 2,
                read_timeout: Duration::from_secs(2),
                ..ServerConfig::default()
            },
        );
        let text = to_text(&gallery::figure4());
        let outcomes: Vec<Result<fcpn_serve::ClientResponse, ()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let addr = handle.addr().to_string();
                    let text = text.clone();
                    scope.spawn(move || {
                        let mut client =
                            Client::connect(&addr, Duration::from_secs(30)).expect("connect");
                        // Hold the connection open so all 8 are in flight
                        // simultaneously before the single worker can drain any.
                        std::thread::sleep(Duration::from_millis(300));
                        // A shed connection may already be closed by the time we
                        // write; that transport error counts as shed.
                        client
                            .request("POST", "/schedule", text.as_bytes())
                            .map_err(|_| ())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let ok = outcomes
            .iter()
            .filter(|r| matches!(r, Ok(resp) if resp.status == 200))
            .count();
        let shed = outcomes.len() - ok;
        assert!(shed >= 1, "expected shedding (reactor={reactor})");
        // Everything that made it into the queue must be served. Whether the worker
        // had already popped a connection when the burst arrived depends on
        // scheduling, so the guaranteed floor is the queue capacity alone.
        assert!(
            ok >= 2,
            "queued connections must still be served (reactor={reactor}): {ok} ok"
        );
        for outcome in outcomes.iter().flatten() {
            if outcome.status == 503 {
                assert!(
                    outcome.header("retry-after").is_some(),
                    "503 without Retry-After (reactor={reactor})"
                );
                assert!(
                    outcome.body.contains("\"error\""),
                    "503 without a JSON error body (reactor={reactor}): {:?}",
                    outcome.body
                );
            } else {
                assert_eq!(outcome.status, 200, "unexpected status (reactor={reactor})");
            }
        }
        handle.shutdown();
    });
}

#[test]
fn keep_alive_connection_serves_many_requests_with_cache_hits() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let net = gallery::figure5();
        let expected = expected_schedule_body(&net);
        let text = to_text(&net);
        let mut client = client(&handle);
        let mut dispositions = Vec::new();
        for _ in 0..10 {
            let response = client
                .request("POST", "/schedule", text.as_bytes())
                .expect("keep-alive request");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, expected);
            dispositions.push(response.header("x-fcpn-cache").unwrap_or("?").to_string());
        }
        assert_eq!(dispositions[0], "miss");
        assert!(
            dispositions[1..].iter().all(|d| d == "hit"),
            "repeat queries must hit the cache (reactor={reactor}): {dispositions:?}"
        );
        handle.shutdown();
    });
}

#[test]
fn load_generator_reports_latencies_and_hit_rate() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        );
        let spec = LoadSpec {
            connections: 8,
            requests_per_connection: 8,
            target: "/schedule".into(),
            nets: vec![
                ("figure3a".into(), to_text(&gallery::figure3a())),
                ("figure5".into(), to_text(&gallery::figure5())),
            ],
            timeout: Duration::from_secs(30),
        };
        let report = fcpn_serve::load::run_load(&handle.addr().to_string(), &spec)
            .expect("load run completes");
        assert_eq!(report.requests, 64);
        assert_eq!(
            report.ok, 64,
            "errors={} rejected={} (reactor={reactor})",
            report.errors, report.rejected
        );
        assert!(report.p50_us > 0.0 && report.p95_us >= report.p50_us);
        // 64 requests over 2 distinct (net, options) keys: at least one miss per key,
        // but concurrent cold requests on the same key may each miss before the first
        // insert lands, so the split is a range, not an exact count.
        assert_eq!(report.cache_hits + report.cache_misses, 64);
        assert!(report.cache_misses >= 2, "misses {}", report.cache_misses);
        assert!(report.cache_hits >= 32, "hits {}", report.cache_hits);
        assert!(report.cache_hit_rate() >= 0.5);
        handle.shutdown();
    });
}

#[test]
fn healthz_metrics_and_hostile_inputs() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                limits: RequestLimits {
                    // Tiny caps so the guard paths trigger instantly.
                    max_allocations: 8,
                    ..RequestLimits::default()
                },
                http: fcpn_serve::HttpLimits {
                    max_body_bytes: 4096,
                    ..fcpn_serve::HttpLimits::default()
                },
                ..ServerConfig::default()
            },
        );
        let mut c = client(&handle);

        let health = c.request("GET", "/healthz", b"").expect("healthz");
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"ok\""));

        // Garbage net text: 400 with the offending line, connection stays usable.
        let bad = c
            .request("POST", "/schedule", b"net x\nfoo bar")
            .expect("bad net answered");
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("line 2"));

        // Non-free-choice input: a typed 422 verdict, not a 500.
        let nfc = c
            .request(
                "POST",
                "/schedule",
                to_text(&gallery::figure1b()).as_bytes(),
            )
            .expect("nfc answered");
        assert_eq!(nfc.status, 422);

        // An allocation-budget blowup: typed 422 with the required count.
        let big = c
            .request(
                "POST",
                "/schedule",
                to_text(&gallery::choice_chain(8)).as_bytes(),
            )
            .expect("budget answered");
        assert_eq!(big.status, 422);
        assert!(big.body.contains("too many allocations"));

        // Oversized body: shed with 413.
        let huge = "#".repeat(8192);
        // The server may close right after writing the 413, so a transport error is
        // also acceptable; what matters is that it did not crash.
        if let Ok(response) = c.request("POST", "/schedule", huge.as_bytes()) {
            assert_eq!(response.status, 413);
        }

        // The daemon survived all of it.
        let mut c2 = client(&handle);
        let metrics = c2.request("GET", "/metrics", b"").expect("metrics");
        assert_eq!(metrics.status, 200);
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        assert!(value.get("requests_total").unwrap().as_u64().unwrap() >= 4);
        assert!(
            value
                .get("responses_client_error")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 2
        );
        handle.shutdown();
    });
}

#[test]
fn per_request_thread_option_matches_sequential_answer() {
    // The sharded scheduler pins bit-identical outcomes for any thread count; the
    // daemon must preserve that through the options plumbing.
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let net = gallery::choice_chain(6);
        let text = to_text(&net);
        let expected = expected_schedule_body(&net);
        let mut c = client(&handle);
        for query in ["/schedule", "/schedule?threads=2", "/schedule?threads=4"] {
            let response = c.request("POST", query, text.as_bytes()).expect("request");
            assert_eq!(response.status, 200, "{query} (reactor={reactor})");
            assert_eq!(response.body, expected, "{query} diverged");
        }
        handle.shutdown();
    });
}

#[test]
fn slow_loris_request_is_dropped_at_the_read_deadline() {
    // A client dripping head bytes under the socket read timeout must still lose its
    // slot at the per-request read deadline — otherwise `workers` (threaded) or
    // `max_connections` (reactor) cheap connections would pin the daemon.
    use std::io::{Read, Write};
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                request_read_deadline: Duration::from_millis(300),
                read_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        );
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"POST /schedule HTTP/1.1\r\nContent-")
            .unwrap();
        // One byte every 100ms: each read succeeds within the 200ms socket timeout,
        // but the 300ms total deadline blows well before the head completes.
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(100));
            if stream.write_all(b"x").is_err() {
                break; // server already reset us — exactly what we want
            }
        }
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 16];
        match stream.read(&mut buf) {
            Ok(0) => {} // clean close: the slot was released
            Err(e)
                if !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {} // reset: also released
            other => panic!("server kept the slow connection alive (reactor={reactor}): {other:?}"),
        }
        handle.shutdown();
    });
}

#[test]
fn metrics_exposes_cancellation_and_persistence_counters() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let mut c = client(&handle);
        let metrics = c.request("GET", "/metrics", b"").expect("metrics");
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        for key in [
            "cancelled_in_stage",
            "cache_evictions",
            "cache_bytes",
            "persist_recovered_entries",
            "persist_torn_tail_truncations",
            "rejected_rate_limited",
            "rejected_quota",
            "idle_timeouts",
            "deadline_disconnects",
            "open_connections",
            "rejected_memory",
            "resource_exhausted",
            "mem_bytes_in_use",
            "mem_budget_bytes",
        ] {
            assert!(
                value.get(key).and_then(|v| v.as_u64()).is_some(),
                "missing or non-numeric metrics key `{key}` (reactor={reactor})"
            );
        }
        let front_end = value.get("front_end").and_then(|v| v.as_str());
        assert_eq!(
            front_end,
            Some(if reactor { "reactor" } else { "threaded" }),
            "front_end label must match the serving path"
        );
        handle.shutdown();
    });
}

#[test]
fn memory_governed_daemon_sheds_and_exhausts_typed_then_keeps_serving() {
    // A 1MiB process pool: a request asking for more than the whole pool is rejected
    // outright (non-retryable 400 — no retry can make it fit), a request whose budget
    // is below the 64KiB metering chunk fails with the typed exhaustion body, and
    // afterwards normal requests still compute with the governor gauge drained back
    // to zero.
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                mem_budget_bytes: Some(1 << 20),
                ..ServerConfig::default()
            },
        );
        let text = to_text(&gallery::figure4());

        // A budget the pool can never cover: rejected as a client error, without the
        // Retry-After that would invite futile retries.
        let mut c = client(&handle);
        let rejected = c
            .request(
                "POST",
                &format!("/schedule?memory_budget_bytes={}", u64::MAX),
                text.as_bytes(),
            )
            .expect("rejected request still gets an answer");
        assert_eq!(rejected.status, 400, "reactor={reactor}");
        assert_eq!(rejected.header("retry-after"), None);

        // Affordable but too small for the engine: the typed exhaustion body.
        let mut c2 = client(&handle);
        let exhausted = c2
            .request(
                "POST",
                "/schedule?memory_budget_bytes=4096&cache=0",
                text.as_bytes(),
            )
            .expect("exhausted request still gets an answer");
        assert_eq!(exhausted.status, 503, "reactor={reactor}");
        let body = fcpn_serve::json::parse(&exhausted.body).expect("typed exhaustion is JSON");
        assert_eq!(
            body.get("error").and_then(|v| v.as_str()),
            Some("memory budget exhausted")
        );
        assert_eq!(body.get("limit_bytes").and_then(|v| v.as_u64()), Some(4096));
        assert!(body.get("stage").and_then(|v| v.as_str()).is_some());

        // The daemon keeps serving, and its answers match the library.
        let mut c3 = client(&handle);
        let ok = c3
            .request("POST", "/schedule", text.as_bytes())
            .expect("normal request");
        assert_eq!(ok.status, 200, "reactor={reactor}");
        assert_eq!(ok.body, expected_schedule_body(&gallery::figure4()));

        let metrics = c3.request("GET", "/metrics", b"").expect("metrics");
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        let counter = |key: &str| value.get(key).and_then(|v| v.as_u64()).unwrap();
        assert!(counter("rejected_memory") >= 1, "reactor={reactor}");
        assert!(counter("resource_exhausted") >= 1, "reactor={reactor}");
        assert_eq!(counter("mem_budget_bytes"), 1 << 20);
        assert_eq!(
            counter("mem_bytes_in_use"),
            0,
            "every reservation must be released (reactor={reactor})"
        );
        handle.shutdown();
    });
}

#[test]
fn blown_deadline_cancels_the_sweep_mid_stage_with_a_503() {
    // choice_chain(12) has 2^12 = 4096 allocations — a sweep that takes far longer
    // than 1ms — so the armed token must abort it from *inside* the stage.
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let text = to_text(&gallery::choice_chain(12));
        let mut c = client(&handle);
        let response = c
            .request(
                "POST",
                "/schedule?deadline_ms=1&cache=0&threads=1",
                text.as_bytes(),
            )
            .expect("cancelled request still gets an answer");
        assert_eq!(response.status, 503);
        let mut c2 = client(&handle);
        let metrics = c2.request("GET", "/metrics", b"").expect("metrics");
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        assert!(
            value.get("cancelled_in_stage").unwrap().as_u64().unwrap() >= 1,
            "the 503 must come from an in-stage cancellation, not a between-stage check"
        );
        // The same request without the hostile deadline still computes fine: the
        // cancellation left no poisoned state behind.
        let ok = c2
            .request("POST", "/schedule?cache=0&threads=1", text.as_bytes())
            .expect("follow-up request");
        assert_eq!(ok.status, 200);
        handle.shutdown();
    });
}

#[test]
fn synthesize_endpoint_roundtrips_with_cache_and_typed_sheds() {
    // The /synthesize wire contract end to end: a complete LTS comes back as a net
    // that parses and realises it (200, cached on repeat), a non-synthesizable LTS
    // gets its typed witness in a 200 verdict, a starved memory budget is a typed 503
    // naming a synthesis stage, and a 1ms deadline aborts the region engine mid-run.
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let net = gallery::marked_ring(4, 2);
        let space = fcpn_petri::statespace::StateSpace::explore(
            &net,
            fcpn_petri::analysis::ReachabilityOptions::default(),
        );
        let lts = fcpn_petri::synthesis::Lts::from_statespace(&net, &space)
            .expect("bounded ring explores completely");
        let body = lts.to_text();

        let mut c = client(&handle);
        let first = c
            .request("POST", "/synthesize", body.as_bytes())
            .expect("synthesize request");
        assert_eq!(first.status, 200, "reactor={reactor}: {}", first.body);
        let value = fcpn_serve::json::parse(&first.body).expect("synthesize answers JSON");
        assert_eq!(
            value.get("synthesizable").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(
            value
                .get("stats")
                .and_then(|s| s.get("verified"))
                .and_then(|v| v.as_bool()),
            Some(true)
        );
        let emitted =
            fcpn_petri::io::parse_net(value.get("net").and_then(|v| v.as_str()).expect("net text"))
                .expect("emitted net parses");
        let re_space = fcpn_petri::statespace::StateSpace::explore(
            &emitted,
            fcpn_petri::analysis::ReachabilityOptions::default(),
        );
        assert_eq!(
            re_space.state_count(),
            space.state_count(),
            "reactor={reactor}"
        );
        assert_eq!(first.header("x-fcpn-cache"), Some("miss"));

        let second = c
            .request("POST", "/synthesize", body.as_bytes())
            .expect("repeat request");
        assert_eq!(second.body, first.body);
        assert_eq!(
            second.header("x-fcpn-cache"),
            Some("hit"),
            "reactor={reactor}"
        );

        // A typed witness for behaviour no net realises.
        let unsat = c
            .request(
                "POST",
                "/synthesize",
                b"lts chain\nedge s0 a s1\nedge s1 a s2\nedge s0 b s0\nedge s2 b s2\n",
            )
            .expect("witness request");
        assert_eq!(unsat.status, 200);
        let verdict = fcpn_serve::json::parse(&unsat.body).expect("witness is JSON");
        assert_eq!(
            verdict.get("synthesizable").and_then(|v| v.as_bool()),
            Some(false)
        );
        assert_eq!(
            verdict
                .get("witness")
                .and_then(|w| w.get("kind"))
                .and_then(|v| v.as_str()),
            Some("event-state-separation")
        );

        // A starved per-request budget: typed 503 from inside a synthesis stage.
        let big_net = gallery::marked_ring(10, 5);
        let big_space = fcpn_petri::statespace::StateSpace::explore(
            &big_net,
            fcpn_petri::analysis::ReachabilityOptions {
                max_markings: 1_000_000,
                max_tokens_per_place: 64,
            },
        );
        let big = fcpn_petri::synthesis::Lts::from_statespace(&big_net, &big_space)
            .expect("bigger ring explores completely")
            .to_text();
        let starved = c
            .request(
                "POST",
                "/synthesize?memory_budget_bytes=64&cache=0",
                big.as_bytes(),
            )
            .expect("starved request");
        assert_eq!(starved.status, 503, "reactor={reactor}: {}", starved.body);
        let shed = fcpn_serve::json::parse(&starved.body).expect("typed exhaustion is JSON");
        assert_eq!(
            shed.get("error").and_then(|v| v.as_str()),
            Some("memory budget exhausted")
        );
        assert!(
            shed.get("stage")
                .and_then(|v| v.as_str())
                .unwrap()
                .starts_with("synthesis-"),
            "exhaustion must name a synthesis stage: {}",
            starved.body
        );

        // A 1ms deadline on an ~8ms synthesis: the armed token aborts the region
        // engine from the inside.
        let blown = c
            .request("POST", "/synthesize?deadline_ms=1&cache=0", big.as_bytes())
            .expect("deadline request");
        assert_eq!(blown.status, 503, "reactor={reactor}: {}", blown.body);

        let metrics = c.request("GET", "/metrics", b"").expect("metrics");
        let counters = fcpn_serve::json::parse(&metrics.body).expect("metrics is JSON");
        let counter = |key: &str| counters.get(key).and_then(|v| v.as_u64()).unwrap();
        assert!(counter("synthesize_requests") >= 5, "reactor={reactor}");
        assert!(counter("resource_exhausted") >= 1, "reactor={reactor}");
        assert!(counter("cancelled_in_stage") >= 1, "reactor={reactor}");
        handle.shutdown();
    });
}

#[test]
fn drain_finishes_in_flight_requests_before_stopping() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                drain_grace: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        );
        let addr = handle.addr().to_string();
        // choice_chain(10): slow enough (1024 allocations, debug build) that the drain
        // below starts while this request is still being computed.
        let text = to_text(&gallery::choice_chain(10));
        let in_flight = std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Duration::from_secs(30)).expect("connect");
            c.request("POST", "/schedule?cache=0", text.as_bytes())
                .expect("in-flight request completes through the drain")
        });
        std::thread::sleep(Duration::from_millis(100));
        handle.drain();
        let response = in_flight.join().expect("request thread");
        assert_eq!(
            response.status, 200,
            "drain must let the in-flight request finish (reactor={reactor})"
        );
    });
}

#[test]
fn persistent_cache_survives_restart_with_identical_bytes() {
    for_each_front_end(|reactor| {
        let dir = std::env::temp_dir().join(format!(
            "fcpn-daemon-persist-{}-{}",
            std::process::id(),
            reactor
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServerConfig {
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let net = gallery::figure5();
        let text = to_text(&net);
        let expected = expected_schedule_body(&net);

        let first_body = {
            let handle = spawn_on(reactor, config());
            let mut c = client(&handle);
            let response = c
                .request("POST", "/schedule", text.as_bytes())
                .expect("warm request");
            assert_eq!(response.status, 200);
            assert_eq!(response.body, expected);
            handle.drain(); // flushes the logs
            response.body
        };

        let handle = spawn_on(reactor, config());
        let mut c = client(&handle);
        let metrics = c.request("GET", "/metrics", b"").expect("metrics");
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        assert!(
            value
                .get("persist_recovered_entries")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 1,
            "restart must reload the persisted entry (reactor={reactor})"
        );
        let response = c
            .request("POST", "/schedule", text.as_bytes())
            .expect("post-restart request");
        assert_eq!(response.status, 200);
        assert_eq!(
            response.header("x-fcpn-cache"),
            Some("hit"),
            "the recovered entry must serve the repeat query"
        );
        assert_eq!(response.body, first_body, "post-recovery bytes diverged");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn shutdown_is_clean_and_port_is_released() {
    for_each_front_end(|reactor| {
        let handle = spawn_on(reactor, ServerConfig::default());
        let addr = handle.addr();
        let mut c = Client::connect(&addr.to_string(), Duration::from_secs(5)).unwrap();
        assert_eq!(c.request("GET", "/healthz", b"").unwrap().status, 200);
        handle.shutdown();
        // The listener is gone: a fresh bind of the same port succeeds.
        let rebound = std::net::TcpListener::bind(addr);
        assert!(
            rebound.is_ok(),
            "port was not released (reactor={reactor}): {rebound:?}"
        );
    });
}

#[test]
fn tenant_rate_limit_answers_429_with_retry_after_and_metrics() {
    // Admission control is front-end agnostic: a tenant bursting past its bucket gets
    // 429 + Retry-After on a keep-alive connection, other tenants are unaffected, and
    // /metrics breaks the counters down per tenant.
    for_each_front_end(|reactor| {
        let handle = spawn_on(
            reactor,
            ServerConfig {
                tenant: fcpn_serve::TenantPolicy {
                    rate: 1.0,
                    burst: 2.0,
                    ..fcpn_serve::TenantPolicy::default()
                },
                ..ServerConfig::default()
            },
        );
        let text = to_text(&gallery::figure4());
        let mut c = client(&handle);
        let mut ok = 0usize;
        let mut limited = 0usize;
        for _ in 0..6 {
            let response = c
                .request_with_headers(
                    "POST",
                    "/schedule",
                    &[("X-Fcpn-Tenant", "acme")],
                    text.as_bytes(),
                )
                .expect("metered request answered on the same connection");
            match response.status {
                200 => ok += 1,
                429 => {
                    limited += 1;
                    let retry: u64 = response
                        .header("retry-after")
                        .expect("429 carries Retry-After")
                        .parse()
                        .expect("Retry-After is an integer");
                    assert!(retry >= 1);
                    assert!(
                        response.body.contains("\"error\""),
                        "429 body must be a JSON error: {:?}",
                        response.body
                    );
                }
                other => panic!("unexpected status {other} (reactor={reactor})"),
            }
        }
        assert_eq!(ok, 2, "bucket depth is 2 (reactor={reactor})");
        assert_eq!(limited, 4, "the rest must be limited (reactor={reactor})");

        // A different tenant still gets served: buckets are independent.
        let other = c
            .request_with_headers(
                "POST",
                "/schedule",
                &[("X-Fcpn-Tenant", "globex")],
                text.as_bytes(),
            )
            .expect("other tenant request");
        assert_eq!(other.status, 200, "tenants must not share buckets");

        let metrics = c.request("GET", "/metrics", b"").expect("metrics");
        let value = fcpn_serve::json::parse(&metrics.body).expect("metrics is valid JSON");
        assert_eq!(
            value.get("rejected_rate_limited").unwrap().as_u64(),
            Some(4)
        );
        let acme = value
            .get("tenants")
            .unwrap()
            .get("acme")
            .expect("acme bucket");
        assert_eq!(acme.get("admitted").unwrap().as_u64(), Some(2));
        assert_eq!(acme.get("rejected").unwrap().as_u64(), Some(4));
        handle.shutdown();
    });
}

// ——— Reactor-only mechanics ————————————————————————————————————————————————

#[cfg(target_os = "linux")]
mod reactor_only {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn metrics_u64(c: &mut Client, key: &str) -> u64 {
        let metrics = c.request("GET", "/metrics", b"").expect("metrics");
        fcpn_serve::json::parse(&metrics.body)
            .expect("metrics is valid JSON")
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("metrics key `{key}` missing"))
    }

    #[test]
    fn idle_connection_is_disconnected_at_the_idle_timeout() {
        let handle = spawn_on(
            true,
            ServerConfig {
                idle_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        );
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let started = std::time::Instant::now();
        let mut buf = [0u8; 16];
        // Never send a byte: the reactor must close us at the idle deadline, well
        // before the 5s read timeout.
        match stream.read(&mut buf) {
            Ok(0) => {}
            Err(e)
                if !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            other => panic!("idle connection was not disconnected: {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "disconnect came from the read timeout, not the idle deadline"
        );
        let mut c = client(&handle);
        assert!(metrics_u64(&mut c, "idle_timeouts") >= 1);
        handle.shutdown();
    }

    #[test]
    fn mid_body_disconnect_frees_the_connection_slot() {
        let handle = spawn_on(true, ServerConfig::default());
        let addr = handle.addr().to_string();
        {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .write_all(b"POST /schedule HTTP/1.1\r\nContent-Length: 4096\r\n\r\nhalf")
                .unwrap();
            stream.flush().unwrap();
            // Give the reactor a beat to register + read the partial body.
            std::thread::sleep(Duration::from_millis(100));
        } // dropped mid-body

        // The gauge must come back down to just our metrics connection: the aborted
        // connection's slot was freed on EOF, not leaked until some timeout.
        let mut c = client(&handle);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let open = metrics_u64(&mut c, "open_connections");
            if open == 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "open_connections stuck at {open}, mid-body slot never freed"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_in_one_write_are_all_answered() {
        let handle = spawn_on(true, ServerConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Three healthz requests in a single write: the parser buffers them all in
        // userspace, so the reactor must answer every one without waiting for more
        // socket readability.
        let one = "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        stream
            .write_all(format!("{one}{one}{one}").as_bytes())
            .unwrap();
        stream.flush().unwrap();
        let mut seen = String::new();
        let mut buf = [0u8; 4096];
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen.matches("HTTP/1.1 200 OK").count() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "pipelined responses incomplete: {seen:?}"
            );
            let n = stream.read(&mut buf).expect("read pipelined responses");
            assert!(
                n > 0,
                "server closed before answering all pipelined requests"
            );
            seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        handle.shutdown();
    }

    #[test]
    fn accept_shed_past_max_connections_is_a_full_503() {
        // max_connections=1: the metrics client takes the only slot, so the next
        // connection must be shed at accept with the complete overload contract —
        // status 503, Retry-After, JSON error body — not a bare RST.
        let handle = spawn_on(
            true,
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        );
        let holder = client(&handle);
        let mut shed = Client::connect(&handle.addr().to_string(), Duration::from_secs(5)).unwrap();
        let response = shed
            .request("GET", "/healthz", b"")
            .expect("shed connection still gets a parseable response");
        assert_eq!(response.status, 503);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert!(response.body.contains("\"error\""));
        drop(holder);
        handle.shutdown();
    }

    #[test]
    fn fanout_load_reports_per_tenant_quantiles() {
        let handle = spawn_on(
            true,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        let spec = fcpn_serve::FanoutSpec {
            connections: 32,
            idle_connections: 64,
            requests_per_connection: 4,
            target: "/schedule".into(),
            nets: vec![("figure4".into(), to_text(&gallery::figure4()))],
            tenants: vec!["acme".into(), "globex".into()],
            deadline: Duration::from_secs(60),
        };
        let report = fcpn_serve::load::run_fanout(&handle.addr().to_string(), &spec)
            .expect("fanout run completes");
        assert_eq!(report.requests, 128);
        assert_eq!(
            report.ok, 128,
            "errors={} rejected={} rate_limited={}",
            report.errors, report.rejected, report.rate_limited
        );
        assert!(report.p95_us >= report.p50_us);
        assert_eq!(report.per_tenant.len(), 2);
        assert_eq!(report.per_tenant[0].tenant, "acme");
        assert_eq!(report.per_tenant[1].tenant, "globex");
        assert_eq!(
            report.per_tenant.iter().map(|t| t.requests).sum::<usize>(),
            128
        );
        handle.shutdown();
    }
}
