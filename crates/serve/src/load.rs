//! A raw-socket HTTP client and a concurrent load generator.
//!
//! The client is deliberately tiny — enough HTTP/1.1 to talk to the daemon over a
//! keep-alive [`TcpStream`] — and the load generator replays a set of nets from N
//! concurrent connections, collecting per-request latencies into p50/p95 quantiles and
//! reading the daemon's cache counters off `/metrics`. The `serve_load` example in
//! `fcpn-bench` drives this module from the command line, and the benchmark baseline
//! emitter uses it to populate the `server` section of `BENCH_statespace.json`.

use crate::json::{parse, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Jittered exponential backoff for reconnect/retry loops.
///
/// Delays double from 10ms up to a 500ms cap, each spread over `[base/2, base]` by a
/// seeded linear-congruential generator — enough decorrelation that a fleet of
/// clients reconnecting after a daemon restart does not stampede in lockstep, with no
/// clock or RNG dependency (the workspace is zero-dependency and the chaos harness
/// wants reproducible schedules). Seed it with something caller-unique, e.g.
/// [`Backoff::seeded_from`] over the target address plus a connection index.
#[derive(Debug, Clone)]
pub struct Backoff {
    attempt: u32,
    state: u64,
}

impl Backoff {
    const BASE_MS: u64 = 10;
    const CAP_MS: u64 = 500;

    /// A fresh schedule; `seed` decorrelates this caller's jitter from its peers'.
    #[must_use]
    pub fn new(seed: u64) -> Backoff {
        Backoff {
            attempt: 0,
            // Avoid the all-zero LCG fixed point.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// A schedule seeded from arbitrary bytes (e.g. the target address) and a caller
    /// index, so every connection in a fleet gets a distinct jitter stream.
    #[must_use]
    pub fn seeded_from(bytes: &[u8], index: u64) -> Backoff {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for &b in bytes {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Backoff::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next delay in the schedule: exponential base with jitter in
    /// `[base/2, base]`, capped at 500ms.
    pub fn next_delay(&mut self) -> Duration {
        let base = (Backoff::BASE_MS << self.attempt.min(16)).min(Backoff::CAP_MS);
        self.attempt = self.attempt.saturating_add(1);
        // Numerical Recipes LCG: fine for jitter, free of dependencies.
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let jitter = (self.state >> 33) % (base / 2 + 1);
        Duration::from_millis(base - jitter)
    }

    /// Sleeps for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Resets the schedule after a success, so the next failure starts from the
    /// 10ms base again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// A keep-alive client connection to the daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

/// One response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First value of a header (lower-case name).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7411"`).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// [`Client::connect`] with up to `attempts` tries, sleeping a [`Backoff`] delay
    /// between failures — the right shape for probing a daemon that is restarting or
    /// shedding connections.
    ///
    /// # Errors
    ///
    /// The last connect failure once every attempt is spent.
    pub fn connect_with_retry(
        addr: &str,
        timeout: Duration,
        attempts: usize,
    ) -> io::Result<Client> {
        let mut backoff = Backoff::seeded_from(addr.as_bytes(), 0);
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr, timeout) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        backoff.sleep();
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Any socket error, timeout, or malformed response head.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        self.request_with_headers(method, path_and_query, &[], body)
    }

    /// [`Client::request`] with extra request headers (e.g. `X-Fcpn-Tenant`).
    ///
    /// # Errors
    ///
    /// Any socket error, timeout, or malformed response head.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path_and_query: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let head = build_request_head(method, path_and_query, headers, body.len());
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("EOF in response head"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn build_request_head(
    method: &str,
    path_and_query: &str,
    headers: &[(&str, &str)],
    body_len: usize,
) -> String {
    let mut head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: fcpn\r\nContent-Length: {body_len}\r\n"
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}

/// Opens `count` TCP connections to `addr` and returns them without sending a byte —
/// the connection-flood probe's raw material. The sockets stay open until dropped.
///
/// # Errors
///
/// Propagates the first connect failure (commonly `EMFILE` when the fd limit is lower
/// than `count`).
pub fn open_idle_sockets(addr: &str, count: usize) -> io::Result<Vec<TcpStream>> {
    let mut sockets = Vec::with_capacity(count);
    for _ in 0..count {
        sockets.push(TcpStream::connect(addr)?);
    }
    Ok(sockets)
}

/// What the load generator replays.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Endpoint path + query, e.g. `"/schedule?threads=1"`.
    pub target: String,
    /// The nets to replay: `(label, text-format body)`. Connections round-robin over
    /// them, each starting at its own offset so the mix is uniform.
    pub nets: Vec<(String, String)>,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            connections: 8,
            requests_per_connection: 32,
            target: "/schedule".into(),
            nets: Vec::new(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted (`connections × requests_per_connection`).
    pub requests: usize,
    /// `200` responses.
    pub ok: usize,
    /// `503` responses (saturation or deadline).
    pub rejected: usize,
    /// Any other status or transport error.
    pub errors: usize,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Wall-clock time of the whole run in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Daemon cache hits during the run (delta of `/metrics`).
    pub cache_hits: u64,
    /// Daemon cache misses during the run (delta of `/metrics`).
    pub cache_misses: u64,
}

impl LoadReport {
    /// Cache hit rate over the run (`0.0` when no cacheable request completed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn cache_counters(addr: &str, timeout: Duration) -> io::Result<(u64, u64)> {
    let mut client = Client::connect(addr, timeout)?;
    let response = client.request("GET", "/metrics", b"")?;
    if response.status != 200 {
        // A shed (503) probe parses as JSON too — failing loudly beats publishing a
        // zero-delta cache rate into the benchmark baseline.
        return Err(io::Error::other(format!(
            "/metrics answered {}",
            response.status
        )));
    }
    let value = parse(&response.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let read = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok((read("cache_hits"), read("cache_misses")))
}

/// Runs the load: `spec.connections` threads each replay
/// `spec.requests_per_connection` requests against `addr`, round-robin over
/// `spec.nets`.
///
/// # Errors
///
/// Only setup failures (connecting for the `/metrics` snapshots) error out; individual
/// request failures are counted in the report.
///
/// # Panics
///
/// Panics if `spec.nets` is empty.
pub fn run_load(addr: &str, spec: &LoadSpec) -> io::Result<LoadReport> {
    assert!(!spec.nets.is_empty(), "load spec has no nets to replay");
    let (hits_before, misses_before) = cache_counters(addr, spec.timeout)?;
    let started = Instant::now();

    struct ConnOutcome {
        latencies_us: Vec<f64>,
        ok: usize,
        rejected: usize,
        errors: usize,
    }

    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|conn_index| {
                scope.spawn(move || {
                    let mut outcome = ConnOutcome {
                        latencies_us: Vec::with_capacity(spec.requests_per_connection),
                        ok: 0,
                        rejected: 0,
                        errors: 0,
                    };
                    let mut client = None;
                    // Reconnects after failures back off exponentially with per-
                    // connection jitter, so a fleet recovering from a daemon restart
                    // does not stampede in lockstep.
                    let mut backoff = Backoff::seeded_from(addr.as_bytes(), conn_index as u64);
                    for i in 0..spec.requests_per_connection {
                        if client.is_none() {
                            client = Client::connect(addr, spec.timeout).ok();
                        }
                        let Some(active) = client.as_mut() else {
                            outcome.errors += 1;
                            backoff.sleep();
                            continue;
                        };
                        let (_, text) = &spec.nets[(conn_index + i) % spec.nets.len()];
                        let sent = Instant::now();
                        match active.request("POST", &spec.target, text.as_bytes()) {
                            Ok(response) => {
                                backoff.reset();
                                outcome
                                    .latencies_us
                                    .push(sent.elapsed().as_secs_f64() * 1e6);
                                match response.status {
                                    200 => outcome.ok += 1,
                                    503 => outcome.rejected += 1,
                                    _ => outcome.errors += 1,
                                }
                                // Honour the server's close (shed connections always
                                // carry `Connection: close`): reusing the socket would
                                // fail the next request and masquerade as an error.
                                if response
                                    .header("connection")
                                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                                {
                                    client = None;
                                }
                            }
                            Err(_) => {
                                outcome.errors += 1;
                                client = None; // reconnect on the next request
                                backoff.sleep();
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread panicked"))
            .collect()
    });

    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (hits_after, misses_after) = cache_counters(addr, spec.timeout)?;
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len();
    Ok(LoadReport {
        requests: spec.connections * spec.requests_per_connection,
        ok: outcomes.iter().map(|o| o.ok).sum(),
        rejected: outcomes.iter().map(|o| o.rejected).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        max_us: latencies.last().copied().unwrap_or(0.0),
        wall_ms,
        throughput_rps: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        cache_hits: hits_after.saturating_sub(hits_before),
        cache_misses: misses_after.saturating_sub(misses_before),
    })
}

/// What the non-blocking fanout generator replays.
///
/// Unlike [`LoadSpec`] (one thread per connection), a fanout run drives every
/// connection from **one** thread over epoll, so the generator itself can hold 10k+
/// sockets open — enough to exercise the reactor's headline number from a single
/// process. `idle_connections` spectator sockets are opened first and held silent for
/// the whole run, measuring how flat the active connections' latency stays while the
/// daemon carries them.
#[derive(Debug, Clone)]
pub struct FanoutSpec {
    /// Actively requesting connections.
    pub connections: usize,
    /// Extra silent connections held open for the duration of the run.
    pub idle_connections: usize,
    /// Requests issued per active connection.
    pub requests_per_connection: usize,
    /// Endpoint path + query, e.g. `"/schedule?threads=1"`.
    pub target: String,
    /// The nets to replay: `(label, text-format body)`; connections round-robin.
    pub nets: Vec<(String, String)>,
    /// `X-Fcpn-Tenant` values assigned round-robin to active connections; empty
    /// sends no tenant header (everything lands in the daemon's default bucket).
    pub tenants: Vec<String>,
    /// Wall-clock budget for the whole run; pending requests past it are abandoned
    /// and counted as errors.
    pub deadline: Duration,
}

impl Default for FanoutSpec {
    fn default() -> Self {
        FanoutSpec {
            connections: 64,
            idle_connections: 0,
            requests_per_connection: 4,
            target: "/schedule".into(),
            nets: Vec::new(),
            tenants: Vec::new(),
            deadline: Duration::from_secs(60),
        }
    }
}

/// Latency quantiles for one tenant within a fanout run.
#[derive(Debug, Clone)]
pub struct TenantLatency {
    /// The `X-Fcpn-Tenant` value (`"-"` when no header was sent).
    pub tenant: String,
    /// Completed requests carrying this tenant header.
    pub requests: usize,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
}

/// Aggregate outcome of one fanout run.
#[derive(Debug, Clone)]
pub struct FanoutReport {
    /// Requests attempted.
    pub requests: usize,
    /// `200` responses.
    pub ok: usize,
    /// `503` responses (saturation/overload).
    pub rejected: usize,
    /// `429` responses (tenant rate limit or quota).
    pub rate_limited: usize,
    /// Any other status, transport error, or request abandoned at the deadline.
    pub errors: usize,
    /// Median latency in microseconds (all tenants).
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds (all tenants).
    pub p95_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Wall-clock time of the whole run in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Per-tenant latency quantiles, sorted by tenant key (present when tenant
    /// headers were sent).
    pub per_tenant: Vec<TenantLatency>,
}

/// Runs a non-blocking fanout load: all active connections (plus the idle spectator
/// sockets) are driven from this one thread over epoll.
///
/// # Errors
///
/// Setup failures (opening sockets, creating the epoll instance), or
/// [`io::ErrorKind::Unsupported`] on non-Linux hosts.
///
/// # Panics
///
/// Panics if `spec.nets` is empty.
pub fn run_fanout(addr: &str, spec: &FanoutSpec) -> io::Result<FanoutReport> {
    assert!(!spec.nets.is_empty(), "fanout spec has no nets to replay");
    #[cfg(target_os = "linux")]
    {
        fanout::run(addr, spec)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = addr;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "fanout load generation requires epoll (linux)",
        ))
    }
}

#[cfg(target_os = "linux")]
mod fanout {
    use super::*;
    use crate::reactor::sys;
    use std::collections::HashMap;
    use std::os::unix::io::AsRawFd;

    /// Incremental HTTP response reader for one non-blocking connection.
    struct RespBuf {
        buf: Vec<u8>,
        head_end: Option<usize>,
        status: u16,
        content_length: usize,
        close: bool,
    }

    impl RespBuf {
        fn new() -> Self {
            RespBuf {
                buf: Vec::new(),
                head_end: None,
                status: 0,
                content_length: 0,
                close: false,
            }
        }

        /// Feeds bytes; `Ok(true)` once the response is complete, `Err` on a head the
        /// client cannot interpret.
        fn feed(&mut self, bytes: &[u8]) -> io::Result<bool> {
            self.buf.extend_from_slice(bytes);
            if self.head_end.is_none() {
                if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                    let head = std::str::from_utf8(&self.buf[..pos])
                        .map_err(|_| bad("non-UTF-8 response head"))?;
                    let mut lines = head.lines();
                    self.status = lines
                        .next()
                        .and_then(|l| l.split(' ').nth(1))
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("malformed status line"))?;
                    for line in lines {
                        let Some((name, value)) = line.split_once(':') else {
                            continue;
                        };
                        let name = name.trim().to_ascii_lowercase();
                        let value = value.trim();
                        if name == "content-length" {
                            self.content_length =
                                value.parse().map_err(|_| bad("bad Content-Length"))?;
                        } else if name == "connection" {
                            self.close = value.eq_ignore_ascii_case("close");
                        }
                    }
                    self.head_end = Some(pos + 4);
                }
            }
            Ok(self
                .head_end
                .is_some_and(|end| self.buf.len() >= end + self.content_length))
        }
    }

    fn bad(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
    }

    fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack
            .windows(needle.len())
            .position(|window| window == needle)
    }

    enum ConnPhase {
        Writing,
        Reading,
        Done,
    }

    struct FanConn {
        stream: TcpStream,
        phase: ConnPhase,
        out: Vec<u8>,
        written: usize,
        resp: RespBuf,
        remaining: usize,
        next_net: usize,
        tenant: Option<String>,
        sent_at: Instant,
        interest: u32,
    }

    struct Tally {
        ok: usize,
        rejected: usize,
        rate_limited: usize,
        errors: usize,
        attempted: usize,
        latencies: Vec<f64>,
        by_tenant: HashMap<String, Vec<f64>>,
    }

    impl FanConn {
        fn start_request(&mut self, spec: &FanoutSpec, tally: &mut Tally) {
            let (_, net) = &spec.nets[self.next_net % spec.nets.len()];
            self.next_net += 1;
            let mut headers: Vec<(&str, &str)> = Vec::new();
            if let Some(tenant) = &self.tenant {
                headers.push(("X-Fcpn-Tenant", tenant));
            }
            let head = build_request_head("POST", &spec.target, &headers, net.len());
            self.out.clear();
            self.out.extend_from_slice(head.as_bytes());
            self.out.extend_from_slice(net.as_bytes());
            self.written = 0;
            self.resp = RespBuf::new();
            self.phase = ConnPhase::Writing;
            self.sent_at = Instant::now();
            tally.attempted += 1;
        }

        /// Drives reads/writes until blocked; `Ok(true)` when the connection must be
        /// reconnected (server closed it), `Err` when it failed mid-request.
        fn pump(
            &mut self,
            spec: &FanoutSpec,
            tally: &mut Tally,
            scratch: &mut [u8],
        ) -> io::Result<bool> {
            loop {
                match self.phase {
                    ConnPhase::Done => return Ok(false),
                    ConnPhase::Writing => {
                        if self.written == self.out.len() {
                            self.phase = ConnPhase::Reading;
                            continue;
                        }
                        match (&self.stream).write(&self.out[self.written..]) {
                            Ok(0) => return Err(bad("write returned 0")),
                            Ok(n) => self.written += n,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    ConnPhase::Reading => match (&self.stream).read(scratch) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "server closed mid-response",
                            ))
                        }
                        Ok(n) => {
                            if self.resp.feed(&scratch[..n])? {
                                let latency = self.sent_at.elapsed().as_secs_f64() * 1e6;
                                tally.latencies.push(latency);
                                let key = self.tenant.clone().unwrap_or_else(|| "-".into());
                                tally.by_tenant.entry(key).or_default().push(latency);
                                match self.resp.status {
                                    200 => tally.ok += 1,
                                    503 => tally.rejected += 1,
                                    429 => tally.rate_limited += 1,
                                    _ => tally.errors += 1,
                                }
                                self.remaining -= 1;
                                let closed = self.resp.close;
                                if self.remaining == 0 {
                                    self.phase = ConnPhase::Done;
                                    return Ok(false);
                                }
                                if closed {
                                    return Ok(true); // reconnect, then next request
                                }
                                self.start_request(spec, tally);
                                continue;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    },
                }
            }
        }

        fn wanted_interest(&self) -> u32 {
            match self.phase {
                ConnPhase::Writing if self.written < self.out.len() => sys::EPOLLOUT,
                ConnPhase::Writing | ConnPhase::Reading => sys::EPOLLIN,
                ConnPhase::Done => 0,
            }
        }
    }

    pub(super) fn run(addr: &str, spec: &FanoutSpec) -> io::Result<FanoutReport> {
        let idle = open_idle_sockets(addr, spec.idle_connections)?;
        let epoll = sys::Epoll::new()?;
        let mut tally = Tally {
            ok: 0,
            rejected: 0,
            rate_limited: 0,
            errors: 0,
            attempted: 0,
            latencies: Vec::new(),
            by_tenant: HashMap::new(),
        };
        let started = Instant::now();
        let mut conns: Vec<Option<FanConn>> = Vec::with_capacity(spec.connections);
        for index in 0..spec.connections {
            let tenant = if spec.tenants.is_empty() {
                None
            } else {
                Some(spec.tenants[index % spec.tenants.len()].clone())
            };
            let stream = TcpStream::connect(addr)?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            let mut conn = FanConn {
                stream,
                phase: ConnPhase::Writing,
                out: Vec::new(),
                written: 0,
                resp: RespBuf::new(),
                remaining: spec.requests_per_connection,
                next_net: index,
                tenant,
                sent_at: started,
                interest: 0,
            };
            conn.start_request(spec, &mut tally);
            epoll.add(conn.stream.as_raw_fd(), sys::EPOLLOUT, index as u64)?;
            conn.interest = sys::EPOLLOUT;
            conns.push(Some(conn));
        }

        let mut scratch = vec![0u8; 16 * 1024];
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        let mut active = conns.iter().filter(|c| c.is_some()).count();
        while active > 0 {
            if started.elapsed() > spec.deadline {
                // Whatever is still pending is abandoned and counted as an error.
                for conn in conns.iter_mut().filter_map(Option::as_mut) {
                    if !matches!(conn.phase, ConnPhase::Done) {
                        tally.errors += 1;
                    }
                }
                break;
            }
            let n = epoll.wait(&mut events, 100)?;
            for event in &events[..n] {
                let index = event.data as usize;
                let Some(conn) = conns.get_mut(index).and_then(Option::as_mut) else {
                    continue;
                };
                match conn.pump(spec, &mut tally, &mut scratch) {
                    Ok(false) => {}
                    Ok(true) => {
                        // Server closed the connection (shed or keep-alive budget):
                        // reconnect and continue this connection's quota.
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        match TcpStream::connect(addr) {
                            Ok(stream) => {
                                stream.set_nonblocking(true)?;
                                let _ = stream.set_nodelay(true);
                                conn.stream = stream;
                                conn.interest = 0;
                                conn.start_request(spec, &mut tally);
                                epoll.add(conn.stream.as_raw_fd(), sys::EPOLLOUT, index as u64)?;
                                conn.interest = sys::EPOLLOUT;
                            }
                            Err(_) => {
                                tally.errors += conn.remaining;
                                conn.phase = ConnPhase::Done;
                            }
                        }
                    }
                    Err(_) => {
                        tally.errors += 1;
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        conn.phase = ConnPhase::Done;
                    }
                }
                let conn = conns[index].as_mut().unwrap();
                if matches!(conn.phase, ConnPhase::Done) {
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                    conns[index] = None;
                    active -= 1;
                } else {
                    let wanted = conn.wanted_interest();
                    if wanted != conn.interest {
                        conn.interest = wanted;
                        let _ = epoll.modify(conn.stream.as_raw_fd(), wanted, index as u64);
                    }
                }
            }
        }
        drop(idle);

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        tally
            .latencies
            .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let completed = tally.latencies.len();
        let mut per_tenant: Vec<TenantLatency> = tally
            .by_tenant
            .into_iter()
            .map(|(tenant, mut series)| {
                series.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
                TenantLatency {
                    requests: series.len(),
                    p50_us: quantile(&series, 0.50),
                    p95_us: quantile(&series, 0.95),
                    tenant,
                }
            })
            .collect();
        per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        Ok(FanoutReport {
            requests: tally.attempted,
            ok: tally.ok,
            rejected: tally.rejected,
            rate_limited: tally.rate_limited,
            errors: tally.errors,
            p50_us: quantile(&tally.latencies, 0.50),
            p95_us: quantile(&tally.latencies, 0.95),
            max_us: tally.latencies.last().copied().unwrap_or(0.0),
            wall_ms,
            throughput_rps: if wall_ms > 0.0 {
                completed as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            per_tenant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_series() {
        // Nearest-rank on 0-based indices: 0.50·99 rounds to index 50, 0.95·99 to 94.
        let series: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(quantile(&series, 0.50), 51.0);
        assert_eq!(quantile(&series, 0.95), 95.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn backoff_is_exponential_jittered_capped_and_deterministic() {
        let mut a = Backoff::seeded_from(b"127.0.0.1:7411", 3);
        let mut b = Backoff::seeded_from(b"127.0.0.1:7411", 3);
        let mut previous_base = 0u64;
        for attempt in 0..12 {
            let delay = a.next_delay();
            assert_eq!(delay, b.next_delay(), "same seed, same schedule");
            let base = (10u64 << attempt.min(16)).min(500);
            let ms = delay.as_millis() as u64;
            assert!(
                ms >= base / 2 && ms <= base,
                "attempt {attempt}: {ms}ms outside [{}, {base}]",
                base / 2
            );
            assert!(base >= previous_base, "base never shrinks");
            previous_base = base;
        }
        // Distinct indices decorrelate; reset restarts from the 10ms base.
        let mut c = Backoff::seeded_from(b"127.0.0.1:7411", 4);
        let schedule_a: Vec<_> = (0..4).map(|_| a.next_delay()).collect();
        let schedule_c: Vec<_> = (0..4).map(|_| c.next_delay()).collect();
        assert_ne!(schedule_a, schedule_c);
        a.reset();
        assert!(a.next_delay() <= Duration::from_millis(10));
    }

    #[test]
    fn hit_rate_handles_zero_traffic() {
        let report = LoadReport {
            requests: 0,
            ok: 0,
            rejected: 0,
            errors: 0,
            p50_us: 0.0,
            p95_us: 0.0,
            max_us: 0.0,
            wall_ms: 0.0,
            throughput_rps: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert_eq!(report.cache_hit_rate(), 0.0);
    }
}
