//! A raw-socket HTTP client and a concurrent load generator.
//!
//! The client is deliberately tiny — enough HTTP/1.1 to talk to the daemon over a
//! keep-alive [`TcpStream`] — and the load generator replays a set of nets from N
//! concurrent connections, collecting per-request latencies into p50/p95 quantiles and
//! reading the daemon's cache counters off `/metrics`. The `serve_load` example in
//! `fcpn-bench` drives this module from the command line, and the benchmark baseline
//! emitter uses it to populate the `server` section of `BENCH_statespace.json`.

use crate::json::{parse, Json};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A keep-alive client connection to the daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

/// One response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl ClientResponse {
    /// First value of a header (lower-case name).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7411"`).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// Any socket error, timeout, or malformed response head.
    pub fn request(
        &mut self,
        method: &str,
        path_and_query: &str,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let head = format!(
            "{method} {path_and_query} HTTP/1.1\r\nHost: fcpn\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("EOF in response head"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// What the load generator replays.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Endpoint path + query, e.g. `"/schedule?threads=1"`.
    pub target: String,
    /// The nets to replay: `(label, text-format body)`. Connections round-robin over
    /// them, each starting at its own offset so the mix is uniform.
    pub nets: Vec<(String, String)>,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            connections: 8,
            requests_per_connection: 32,
            target: "/schedule".into(),
            nets: Vec::new(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// Aggregate outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted (`connections × requests_per_connection`).
    pub requests: usize,
    /// `200` responses.
    pub ok: usize,
    /// `503` responses (saturation or deadline).
    pub rejected: usize,
    /// Any other status or transport error.
    pub errors: usize,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Wall-clock time of the whole run in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second over the wall clock.
    pub throughput_rps: f64,
    /// Daemon cache hits during the run (delta of `/metrics`).
    pub cache_hits: u64,
    /// Daemon cache misses during the run (delta of `/metrics`).
    pub cache_misses: u64,
}

impl LoadReport {
    /// Cache hit rate over the run (`0.0` when no cacheable request completed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn cache_counters(addr: &str, timeout: Duration) -> io::Result<(u64, u64)> {
    let mut client = Client::connect(addr, timeout)?;
    let response = client.request("GET", "/metrics", b"")?;
    if response.status != 200 {
        // A shed (503) probe parses as JSON too — failing loudly beats publishing a
        // zero-delta cache rate into the benchmark baseline.
        return Err(io::Error::other(format!(
            "/metrics answered {}",
            response.status
        )));
    }
    let value = parse(&response.body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let read = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok((read("cache_hits"), read("cache_misses")))
}

/// Runs the load: `spec.connections` threads each replay
/// `spec.requests_per_connection` requests against `addr`, round-robin over
/// `spec.nets`.
///
/// # Errors
///
/// Only setup failures (connecting for the `/metrics` snapshots) error out; individual
/// request failures are counted in the report.
///
/// # Panics
///
/// Panics if `spec.nets` is empty.
pub fn run_load(addr: &str, spec: &LoadSpec) -> io::Result<LoadReport> {
    assert!(!spec.nets.is_empty(), "load spec has no nets to replay");
    let (hits_before, misses_before) = cache_counters(addr, spec.timeout)?;
    let started = Instant::now();

    struct ConnOutcome {
        latencies_us: Vec<f64>,
        ok: usize,
        rejected: usize,
        errors: usize,
    }

    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|conn_index| {
                scope.spawn(move || {
                    let mut outcome = ConnOutcome {
                        latencies_us: Vec::with_capacity(spec.requests_per_connection),
                        ok: 0,
                        rejected: 0,
                        errors: 0,
                    };
                    let mut client = None;
                    for i in 0..spec.requests_per_connection {
                        if client.is_none() {
                            client = Client::connect(addr, spec.timeout).ok();
                        }
                        let Some(active) = client.as_mut() else {
                            outcome.errors += 1;
                            continue;
                        };
                        let (_, text) = &spec.nets[(conn_index + i) % spec.nets.len()];
                        let sent = Instant::now();
                        match active.request("POST", &spec.target, text.as_bytes()) {
                            Ok(response) => {
                                outcome
                                    .latencies_us
                                    .push(sent.elapsed().as_secs_f64() * 1e6);
                                match response.status {
                                    200 => outcome.ok += 1,
                                    503 => outcome.rejected += 1,
                                    _ => outcome.errors += 1,
                                }
                                // Honour the server's close (shed connections always
                                // carry `Connection: close`): reusing the socket would
                                // fail the next request and masquerade as an error.
                                if response
                                    .header("connection")
                                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                                {
                                    client = None;
                                }
                            }
                            Err(_) => {
                                outcome.errors += 1;
                                client = None; // reconnect on the next request
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection thread panicked"))
            .collect()
    });

    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (hits_after, misses_after) = cache_counters(addr, spec.timeout)?;
    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len();
    Ok(LoadReport {
        requests: spec.connections * spec.requests_per_connection,
        ok: outcomes.iter().map(|o| o.ok).sum(),
        rejected: outcomes.iter().map(|o| o.rejected).sum(),
        errors: outcomes.iter().map(|o| o.errors).sum(),
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        max_us: latencies.last().copied().unwrap_or(0.0),
        wall_ms,
        throughput_rps: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        cache_hits: hits_after.saturating_sub(hits_before),
        cache_misses: misses_after.saturating_sub(misses_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_series() {
        // Nearest-rank on 0-based indices: 0.50·99 rounds to index 50, 0.95·99 to 94.
        let series: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(quantile(&series, 0.50), 51.0);
        assert_eq!(quantile(&series, 0.95), 95.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn hit_rate_handles_zero_traffic() {
        let report = LoadReport {
            requests: 0,
            ok: 0,
            rejected: 0,
            errors: 0,
            p50_us: 0.0,
            p95_us: 0.0,
            max_us: 0.0,
            wall_ms: 0.0,
            throughput_rps: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert_eq!(report.cache_hit_rate(), 0.0);
    }
}
