//! The daemon: accept loop, bounded connection queue, worker pool, graceful shutdown.
//!
//! ## Concurrency model
//!
//! One accept thread owns the [`TcpListener`]; accepted connections are pushed into a
//! bounded FIFO guarded by a mutex + condvar. A fixed pool of worker threads pops
//! connections and serves them request-by-request (HTTP/1.1 keep-alive, socket read
//! timeout as the idle bound). **Backpressure is immediate and explicit**: when the
//! queue is full the accept thread answers `503 Service Unavailable` itself and closes —
//! a saturated daemon sheds load in microseconds instead of stacking latency. In-flight
//! capacity is therefore `workers + queue_capacity` connections.
//!
//! Per-request CPU is bounded by the handler guards (state budgets, allocation budgets,
//! deadlines — see [`crate::handlers`]); per-request memory by the HTTP limits; worker
//! loss by the panic shield around each request (a panicking handler answers `500`,
//! never takes down the worker).

use crate::cache::ResultCache;
use crate::handlers::{self, HandlerCtx, RequestLimits};
use crate::http::{self, HttpError, HttpLimits, Request, Response};
use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon is configured with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker thread count.
    pub workers: usize,
    /// Bounded accept-queue capacity; connections beyond `workers + queue_capacity`
    /// in flight are answered `503`.
    pub queue_capacity: usize,
    /// Total result-cache entries across shards.
    pub cache_entries: usize,
    /// Result-cache shard count (mutex granularity).
    pub cache_shards: usize,
    /// Total result-cache byte budget across shards (bodies + fixed per-entry
    /// overhead); least-recently-used entries are evicted past it.
    pub cache_bytes: usize,
    /// Directory for the crash-safe persistent cache logs (one per shard). `None`
    /// keeps the cache purely in memory. The directory is created if absent; intact
    /// entries from previous runs warm the cache at spawn, torn or corrupt log tails
    /// are truncated (see the `persist_*` metrics).
    pub cache_dir: Option<PathBuf>,
    /// Socket read timeout: bounds each blocking `read` and therefore the keep-alive
    /// idle wait.
    pub read_timeout: Duration,
    /// Total wall-clock budget for reading one request (head + body), checked after
    /// every read. This is the slow-loris bound: a client dripping bytes under
    /// `read_timeout` still loses the worker when this elapses. The clock starts when
    /// the worker begins waiting for the request, so it also covers (and must exceed)
    /// one keep-alive idle wait.
    pub request_read_deadline: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Total wall-clock budget for writing one response, checked between body chunks.
    /// This is the write-side slow-loris bound: a peer draining its receive window a
    /// byte at a time keeps each socket write under `write_timeout` but still loses
    /// the worker when this elapses.
    pub response_write_deadline: Duration,
    /// How long [`ServerHandle::drain`] waits for in-flight requests before forcing
    /// shutdown anyway.
    pub drain_grace: Duration,
    /// Most requests served on one keep-alive connection before it is closed.
    pub max_requests_per_connection: usize,
    /// HTTP parsing limits (head/header/body sizes).
    pub http: HttpLimits,
    /// Caps for per-request options.
    pub limits: RequestLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".into(),
            workers: 8,
            queue_capacity: 64,
            cache_entries: 4096,
            cache_shards: 16,
            cache_bytes: 64 << 20,
            cache_dir: None,
            read_timeout: Duration::from_secs(5),
            request_read_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            response_write_deadline: Duration::from_secs(10),
            drain_grace: Duration::from_secs(5),
            max_requests_per_connection: 4096,
            http: HttpLimits::default(),
            limits: RequestLimits::default(),
        }
    }
}

/// State shared by the accept thread and the workers.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    metrics: Metrics,
    cache: ResultCache,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Set by [`ServerHandle::drain`]: new connections are refused with `503`,
    /// in-flight requests run to completion (bounded by their deadlines), keep-alive
    /// connections are closed after the response in flight.
    draining: AtomicBool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        match self.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A running daemon: its bound address and the handles needed to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

/// Builder entry point for the daemon.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the accept thread and worker pool; returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or a filesystem failure while opening the
    /// persistent cache directory (damaged log *contents* are recovered from, never an
    /// error).
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::with_persistence(
                config.cache_shards,
                config.cache_entries,
                config.cache_bytes,
                dir,
            )?,
            None => ResultCache::with_limits(
                config.cache_shards,
                config.cache_entries,
                config.cache_bytes,
            ),
        };
        let metrics = Metrics::new();
        let recovery = cache.recovery_stats();
        metrics
            .persist_recovered_entries
            .store(recovery.recovered_entries, Ordering::Relaxed);
        metrics
            .persist_torn_tail_truncations
            .store(recovery.torn_tail_truncations, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            cache,
            metrics,
            queue: Mutex::new(VecDeque::with_capacity(config.queue_capacity)),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            config,
        });

        let worker_threads = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fcpn-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fcpn-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }
}

impl ServerHandle {
    /// The address the daemon is actually bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (i.e. until [`shutdown`](Self::shutdown) is called
    /// from another thread — the accept loop runs until told to stop).
    pub fn join(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }

    /// Gracefully drains the daemon, then stops it.
    ///
    /// From the moment drain starts, new connections are refused with `503` and
    /// keep-alive connections close after the response in flight. Requests already
    /// being handled run to completion — each is bounded by its own deadline — waited
    /// for up to `config.drain_grace`. The persistent cache (if any) is fsynced before
    /// the threads are stopped, so a drained daemon restarts with a warm, intact
    /// cache. Blocks until all threads have joined.
    pub fn drain(self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let grace_until = Instant::now() + self.shared.config.drain_grace;
        while Instant::now() < grace_until {
            let in_flight = self.shared.metrics.in_flight.load(Ordering::SeqCst);
            let queued = self.shared.lock_queue().len();
            if in_flight == 0 && queued == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.shared.cache.flush();
        self.shutdown();
    }

    /// Stops the daemon: no new connections are accepted, queued connections are
    /// dropped, workers finish their current request and exit. Blocks until all
    /// threads have joined.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.ready.notify_all();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Workers may be parked in the condvar or blocked in a socket read (bounded by
        // the read timeout); keep nudging until each exits.
        self.shared.lock_queue().clear();
        self.shared.ready.notify_all();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE under fd pressure, say) would
                // otherwise hard-spin this thread; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared
            .metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        if shared.draining.load(Ordering::SeqCst) {
            // A draining daemon sheds new work the same way a saturated one does:
            // immediately, explicitly, and without tying up a worker.
            shared
                .metrics
                .rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.count_response(503);
            reject_saturated(stream, shared);
            continue;
        }
        let mut queue = shared.lock_queue();
        if queue.len() >= shared.config.queue_capacity {
            drop(queue);
            shared
                .metrics
                .rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.count_response(503);
            reject_saturated(stream, shared);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

/// Answers `503` on the accept thread itself — the whole point of the bounded queue is
/// that saturation costs one small write, not a worker.
fn reject_saturated(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let response =
        Response::error(503, "server saturated; retry later").with_header("Retry-After", "1");
    let _ = http::write_response(&mut stream, &response, true);
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.lock_queue();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                queue = match shared.ready.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        serve_connection(stream, shared);
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    for served in 0.. {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let deadline = std::time::Instant::now() + shared.config.request_read_deadline;
        let request = match http::read_request(&mut reader, &shared.config.http, Some(deadline)) {
            Ok(Some(request)) => request,
            Ok(None) | Err(HttpError::Disconnected) => return,
            Err(HttpError::Malformed { status, message }) => {
                let response = Response::error(status, &message);
                shared.metrics.count_response(response.status);
                let _ = http::write_response(reader.get_mut(), &response, true);
                return;
            }
        };
        shared
            .metrics
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let response = dispatch(shared, &request);
        let elapsed_us = started.elapsed().as_micros();
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.metrics.count_response(response.status);
        let response = response.with_header("X-Fcpn-Elapsed-Us", &elapsed_us.to_string());
        let close = request.wants_close()
            || served + 1 >= shared.config.max_requests_per_connection
            || shared.shutdown.load(Ordering::SeqCst)
            || shared.draining.load(Ordering::SeqCst);
        let write_deadline = std::time::Instant::now() + shared.config.response_write_deadline;
        if http::write_response_deadline(reader.get_mut(), &response, close, Some(write_deadline))
            .is_err()
            || close
        {
            return;
        }
    }
}

/// Routes one request: the two GET probes are answered here (they need queue state),
/// everything else goes through the API handlers. Handler panics (there should be none:
/// the pipeline returns typed errors — but the daemon must outlive a bug) become `500`s.
fn dispatch(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            crate::json::Json::obj([("status", crate::json::Json::from("ok"))]).render(),
        ),
        ("GET", "/metrics") => {
            let queue_depth = shared.lock_queue().len();
            Response::json(
                200,
                shared.metrics.render(
                    shared.cache.hits(),
                    shared.cache.misses(),
                    shared.cache.len(),
                    shared.cache.evictions(),
                    shared.cache.bytes(),
                    queue_depth,
                    shared.config.queue_capacity,
                    shared.config.workers,
                ),
            )
        }
        _ => {
            let ctx = HandlerCtx {
                limits: &shared.config.limits,
                cache: &shared.cache,
                metrics: &shared.metrics,
            };
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handlers::handle(&ctx, request)
            })) {
                Ok(response) => response,
                Err(_) => Response::error(500, "internal error while handling the request"),
            }
        }
    }
}
