//! The daemon: front-end selection, shared request core, graceful shutdown.
//!
//! ## Two front ends, one core
//!
//! The daemon has two interchangeable connection front ends over one shared
//! [`Core`] (config + metrics + cache + tenant governor + lifecycle flags):
//!
//! - **Reactor** (`config.reactor`, the default on Linux): a single epoll thread
//!   drives non-blocking per-connection state machines and hands only *complete*
//!   requests to the CPU worker pool over a bounded queue — a slow or idle client
//!   costs a few kilobytes of buffer, never a thread. See [`crate::reactor`].
//! - **Threaded** (the fallback, and the only option off Linux): one accept thread
//!   owns the [`TcpListener`]; accepted connections are pushed into a bounded FIFO
//!   guarded by a mutex + condvar, and a fixed pool of worker threads pops
//!   connections and serves them request-by-request with blocking reads.
//!
//! **Backpressure is immediate and explicit** on both paths: past the bounded
//! queue (connections for the threaded path, parsed requests for the reactor) the
//! daemon answers `503 Service Unavailable` with a `Retry-After` in microseconds
//! instead of stacking latency. On top of that sits per-tenant admission control
//! (token-bucket rate + in-flight quota keyed by the `X-Fcpn-Tenant` header,
//! `429 Too Many Requests` on exhaustion — see [`crate::tenant`]), disabled by
//! default and switched on with a non-zero tenant rate.
//!
//! Per-request CPU is bounded by the handler guards (state budgets, allocation
//! budgets, deadlines — see [`crate::handlers`]); per-request memory by the HTTP
//! limits; worker loss by the panic shield around each request (a panicking
//! handler answers `500`, never takes down the worker).

use crate::cache::ResultCache;
use crate::handlers::{self, HandlerCtx, MemGovernor, RequestLimits};
use crate::http::{self, HttpError, HttpLimits, Request, Response};
use crate::metrics::{Metrics, RuntimeStats};
use crate::tenant::{Admission, TenantGovernor, TenantPolicy};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the daemon is configured with.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address is reported by
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Use the event-driven epoll front end (Linux only; silently falls back to the
    /// threaded front end elsewhere). Defaults to `true` on Linux.
    pub reactor: bool,
    /// Worker thread count.
    pub workers: usize,
    /// Bounded queue capacity: pending connections (threaded) or parsed-but-not-yet-
    /// executing requests (reactor) beyond it are answered `503`.
    pub queue_capacity: usize,
    /// Reactor only: most connections held open at once; accepts beyond it are shed
    /// with `503` at accept time.
    pub max_connections: usize,
    /// Reactor only: keep-alive connections idle (no partial request buffered) longer
    /// than this are closed. The threaded path's idle bound is `read_timeout`.
    pub idle_timeout: Duration,
    /// Per-tenant admission policy (token-bucket rate, burst, in-flight quota).
    /// Metering is off while `tenant.rate == 0.0` (the default).
    pub tenant: TenantPolicy,
    /// Total result-cache entries across shards.
    pub cache_entries: usize,
    /// Result-cache shard count (mutex granularity).
    pub cache_shards: usize,
    /// Total result-cache byte budget across shards (bodies + fixed per-entry
    /// overhead); least-recently-used entries are evicted past it.
    pub cache_bytes: usize,
    /// Directory for the crash-safe persistent cache logs (one per shard). `None`
    /// keeps the cache purely in memory. The directory is created if absent; intact
    /// entries from previous runs warm the cache at spawn, torn or corrupt log tails
    /// are truncated (see the `persist_*` metrics).
    pub cache_dir: Option<PathBuf>,
    /// Socket read timeout: bounds each blocking `read` and therefore the keep-alive
    /// idle wait (threaded path).
    pub read_timeout: Duration,
    /// Total wall-clock budget for reading one request (head + body). This is the
    /// slow-loris bound: a client dripping bytes still loses its worker (threaded) or
    /// connection slot (reactor) when this elapses after the first byte.
    pub request_read_deadline: Duration,
    /// Socket write timeout (threaded path).
    pub write_timeout: Duration,
    /// Total wall-clock budget for writing one response. This is the write-side
    /// slow-loris bound: a peer draining its receive window a byte at a time loses
    /// the connection when this elapses.
    pub response_write_deadline: Duration,
    /// How long [`ServerHandle::drain`] waits for in-flight requests before forcing
    /// shutdown anyway.
    pub drain_grace: Duration,
    /// Most requests served on one keep-alive connection before it is closed.
    pub max_requests_per_connection: usize,
    /// HTTP parsing limits (head/header/body sizes).
    pub http: HttpLimits,
    /// Caps for per-request options.
    pub limits: RequestLimits,
    /// Process-wide engine-allocation byte pool (`--mem-budget`). When set, every
    /// request's effective memory budget is reserved against this pool at admission
    /// and requests that cannot be covered are shed with `503` + `Retry-After`;
    /// unbudgeted requests are given `limits.default_memory_budget_bytes` (armed
    /// automatically when absent) so nothing runs unaccounted. `None` (the default)
    /// disables global memory admission control.
    pub mem_budget_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".into(),
            reactor: cfg!(target_os = "linux"),
            workers: 8,
            queue_capacity: 64,
            max_connections: 10_240,
            idle_timeout: Duration::from_secs(5),
            tenant: TenantPolicy::default(),
            cache_entries: 4096,
            cache_shards: 16,
            cache_bytes: 64 << 20,
            cache_dir: None,
            read_timeout: Duration::from_secs(5),
            request_read_deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            response_write_deadline: Duration::from_secs(10),
            drain_grace: Duration::from_secs(5),
            max_requests_per_connection: 4096,
            http: HttpLimits::default(),
            limits: RequestLimits::default(),
            mem_budget_bytes: None,
        }
    }
}

/// Everything both front ends share: configuration, counters, the response cache,
/// the tenant governor and the lifecycle flags.
#[derive(Debug)]
pub(crate) struct Core {
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Metrics,
    pub(crate) cache: ResultCache,
    pub(crate) tenants: TenantGovernor,
    /// The process memory governor (`--mem-budget`); `None` runs without global
    /// memory admission control.
    pub(crate) governor: Option<MemGovernor>,
    /// Which front end is running (`"reactor"` / `"threaded"`), for `/metrics`.
    pub(crate) front_end: &'static str,
    pub(crate) shutdown: AtomicBool,
    /// Set by [`ServerHandle::drain`]: new connections are refused with `503`,
    /// in-flight requests run to completion (bounded by their deadlines), keep-alive
    /// connections are closed after the response in flight.
    pub(crate) draining: AtomicBool,
}

/// Outcome of per-tenant admission for one request.
pub(crate) enum Admitted {
    /// Proceed; `tenant` must be released after the request finishes.
    Ok {
        /// Bucket key to pass to [`TenantGovernor::release`].
        tenant: String,
    },
    /// Refused: write this response (keep-alive safe) and do not dispatch.
    Rejected(Response),
}

impl Core {
    fn new(mut config: ServerConfig, front_end: &'static str) -> io::Result<Core> {
        // With a process budget armed, every request must be accountable to it: give
        // unbudgeted requests a default per-request budget (capped by both the pool
        // and the per-request maximum) unless the operator already chose one.
        let governor = config.mem_budget_bytes.map(MemGovernor::new);
        if let Some(pool) = config.mem_budget_bytes {
            config
                .limits
                .default_memory_budget_bytes
                .get_or_insert(pool.min(config.limits.max_memory_budget_bytes));
        }
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::with_persistence(
                config.cache_shards,
                config.cache_entries,
                config.cache_bytes,
                dir,
            )?,
            None => ResultCache::with_limits(
                config.cache_shards,
                config.cache_entries,
                config.cache_bytes,
            ),
        };
        let metrics = Metrics::new();
        let recovery = cache.recovery_stats();
        metrics
            .persist_recovered_entries
            .store(recovery.recovered_entries, Ordering::Relaxed);
        metrics
            .persist_torn_tail_truncations
            .store(recovery.torn_tail_truncations, Ordering::Relaxed);
        Ok(Core {
            tenants: TenantGovernor::new(config.tenant),
            governor,
            metrics,
            cache,
            front_end,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            config,
        })
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The shed response used by every overload path (accept-time saturation, full
    /// dispatch queue, drain refusals) — JSON body + `Retry-After`, consistent with
    /// handler errors.
    pub(crate) fn overload_response() -> Response {
        Response::error(503, "server saturated; retry later").with_header("Retry-After", "1")
    }

    /// Whether this request is a monitoring probe, exempt from tenant metering (rate
    /// limiting a health check starves the monitoring that would detect the outage).
    pub(crate) fn is_probe(request: &Request) -> bool {
        request.method == "GET" && (request.path == "/healthz" || request.path == "/metrics")
    }

    /// Runs per-tenant admission for one (non-probe) request, updating the rejection
    /// counters on refusal.
    pub(crate) fn admit(&self, request: &Request) -> Admitted {
        let tenant = TenantGovernor::tenant_key(request.header("x-fcpn-tenant"));
        match self.tenants.admit(tenant) {
            Admission::Admitted => Admitted::Ok {
                tenant: tenant.to_string(),
            },
            Admission::RateLimited { retry_after_s } => {
                self.metrics
                    .rejected_rate_limited
                    .fetch_add(1, Ordering::Relaxed);
                Admitted::Rejected(
                    Response::error(429, "tenant rate limit exceeded; retry later")
                        .with_header("Retry-After", &retry_after_s.to_string()),
                )
            }
            Admission::QuotaExceeded => {
                self.metrics.rejected_quota.fetch_add(1, Ordering::Relaxed);
                Admitted::Rejected(
                    Response::error(429, "tenant in-flight quota exceeded; retry later")
                        .with_header("Retry-After", "1"),
                )
            }
        }
    }

    /// Routes one request: the two GET probes are answered here (they need queue
    /// state), everything else goes through the API handlers. Handler panics (there
    /// should be none: the pipeline returns typed errors — but the daemon must outlive
    /// a bug) become `500`s.
    pub(crate) fn dispatch(&self, request: &Request, queue_depth: usize) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => Response::json(
                200,
                crate::json::Json::obj([("status", crate::json::Json::from("ok"))]).render(),
            ),
            ("GET", "/metrics") => Response::json(
                200,
                self.metrics.render(RuntimeStats {
                    front_end: self.front_end,
                    cache_hits: self.cache.hits(),
                    cache_misses: self.cache.misses(),
                    cache_entries: self.cache.len(),
                    cache_evictions: self.cache.evictions(),
                    cache_bytes: self.cache.bytes(),
                    mem_bytes_in_use: self.governor.as_ref().map_or(0, MemGovernor::bytes_in_use),
                    mem_budget_bytes: self.governor.as_ref().map_or(0, MemGovernor::limit_bytes),
                    queue_depth,
                    queue_capacity: self.config.queue_capacity,
                    workers: self.config.workers,
                    tenants: self.tenants.render_json(),
                }),
            ),
            _ => {
                let ctx = HandlerCtx {
                    limits: &self.config.limits,
                    cache: &self.cache,
                    metrics: &self.metrics,
                    governor: self.governor.as_ref(),
                };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handlers::handle(&ctx, request)
                })) {
                    Ok(response) => response,
                    Err(_) => Response::error(500, "internal error while handling the request"),
                }
            }
        }
    }
}

/// State shared by the threaded accept thread and its workers.
#[derive(Debug)]
struct ThreadedShared {
    core: Arc<Core>,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ThreadedShared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        match self.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The running front end behind a [`ServerHandle`].
#[derive(Debug)]
enum Front {
    Threaded {
        shared: Arc<ThreadedShared>,
        accept_thread: Option<JoinHandle<()>>,
        worker_threads: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorHandle),
}

/// A running daemon: its bound address and the handles needed to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<Core>,
    front: Front,
}

/// Builder entry point for the daemon.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the configured front end (epoll reactor or
    /// threaded accept loop) plus the CPU worker pool; returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, a filesystem failure while opening the persistent
    /// cache directory (damaged log *contents* are recovered from, never an error), or
    /// an epoll setup failure in reactor mode.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let use_reactor = config.reactor && cfg!(target_os = "linux");
        let front_end = if use_reactor { "reactor" } else { "threaded" };
        let core = Arc::new(Core::new(config, front_end)?);

        #[cfg(target_os = "linux")]
        if use_reactor {
            let handle = crate::reactor::ReactorHandle::spawn(Arc::clone(&core), listener)?;
            return Ok(ServerHandle {
                addr,
                core,
                front: Front::Reactor(handle),
            });
        }

        let workers = core.config.workers.max(1);
        let shared = Arc::new(ThreadedShared {
            queue: Mutex::new(VecDeque::with_capacity(core.config.queue_capacity)),
            ready: Condvar::new(),
            core: Arc::clone(&core),
        });
        let worker_threads = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fcpn-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fcpn-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            core,
            front: Front::Threaded {
                shared,
                accept_thread: Some(accept_thread),
                worker_threads,
            },
        })
    }
}

impl ServerHandle {
    /// The address the daemon is actually bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (i.e. until another thread flips the shutdown
    /// flag — the front end runs until told to stop).
    pub fn join(self) {
        match self.front {
            Front::Threaded {
                accept_thread,
                worker_threads,
                ..
            } => {
                if let Some(accept) = accept_thread {
                    let _ = accept.join();
                }
                for worker in worker_threads {
                    let _ = worker.join();
                }
            }
            #[cfg(target_os = "linux")]
            Front::Reactor(handle) => handle.join(),
        }
    }

    /// Gracefully drains the daemon, then stops it.
    ///
    /// From the moment drain starts, new connections are refused with `503` and
    /// keep-alive connections close after the response in flight. Requests already
    /// being handled run to completion — each is bounded by its own deadline — waited
    /// for up to `config.drain_grace`. The persistent cache (if any) is fsynced before
    /// the threads are stopped, so a drained daemon restarts with a warm, intact
    /// cache. Blocks until all threads have joined.
    pub fn drain(self) {
        self.core.draining.store(true, Ordering::SeqCst);
        match self.front {
            Front::Threaded { ref shared, .. } => {
                let grace_until = Instant::now() + self.core.config.drain_grace;
                while Instant::now() < grace_until {
                    let in_flight = self.core.metrics.in_flight.load(Ordering::SeqCst);
                    let queued = shared.lock_queue().len();
                    if in_flight == 0 && queued == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                let _ = self.core.cache.flush();
                self.shutdown();
            }
            #[cfg(target_os = "linux")]
            Front::Reactor(handle) => {
                handle.drain();
                let _ = self.core.cache.flush();
            }
        }
    }

    /// Stops the daemon: no new connections are accepted, queued work is dropped,
    /// workers finish their current request and exit. Blocks until all threads have
    /// joined.
    pub fn shutdown(self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        match self.front {
            Front::Threaded {
                shared,
                mut accept_thread,
                mut worker_threads,
            } => {
                // Unblock the accept thread with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                shared.ready.notify_all();
                if let Some(accept) = accept_thread.take() {
                    let _ = accept.join();
                }
                // Workers may be parked in the condvar or blocked in a socket read
                // (bounded by the read timeout); keep nudging until each exits.
                shared.lock_queue().clear();
                shared.ready.notify_all();
                for worker in worker_threads.drain(..) {
                    let _ = worker.join();
                }
            }
            #[cfg(target_os = "linux")]
            Front::Reactor(handle) => handle.shutdown(),
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &ThreadedShared) {
    let core = &shared.core;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if core.shutting_down() {
                    return;
                }
                // Persistent accept errors (EMFILE under fd pressure, say) would
                // otherwise hard-spin this thread; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if core.shutting_down() {
            return;
        }
        core.metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        if core.is_draining() {
            // A draining daemon sheds new work the same way a saturated one does:
            // immediately, explicitly, and without tying up a worker.
            core.metrics
                .rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            core.metrics.count_response(503);
            reject_saturated(stream, core);
            continue;
        }
        let mut queue = shared.lock_queue();
        if queue.len() >= core.config.queue_capacity {
            drop(queue);
            core.metrics
                .rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            core.metrics.count_response(503);
            reject_saturated(stream, core);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.ready.notify_one();
        }
    }
}

/// Answers the shed `503` on the accept thread itself — the whole point of the bounded
/// queue is that saturation costs one small write, not a worker.
fn reject_saturated(mut stream: TcpStream, core: &Core) {
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let _ = http::write_response(&mut stream, &Core::overload_response(), true);
}

fn worker_loop(shared: &ThreadedShared) {
    loop {
        let stream = {
            let mut queue = shared.lock_queue();
            loop {
                if shared.core.shutting_down() {
                    return;
                }
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                queue = match shared.ready.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        serve_connection(stream, shared);
    }
}

fn serve_connection(stream: TcpStream, shared: &ThreadedShared) {
    let core = &shared.core;
    let _ = stream.set_read_timeout(Some(core.config.read_timeout));
    let _ = stream.set_write_timeout(Some(core.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    for served in 0.. {
        if core.shutting_down() {
            return;
        }
        let deadline = Instant::now() + core.config.request_read_deadline;
        let request = match http::read_request(&mut reader, &core.config.http, Some(deadline)) {
            Ok(Some(request)) => request,
            Ok(None) | Err(HttpError::Disconnected) => return,
            Err(HttpError::Malformed { status, message }) => {
                let response = Response::error(status, &message);
                core.metrics.count_response(response.status);
                let _ = http::write_response(reader.get_mut(), &response, true);
                return;
            }
        };
        core.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let response = if Core::is_probe(&request) {
            core.dispatch(&request, shared.lock_queue().len())
        } else {
            match core.admit(&request) {
                Admitted::Ok { tenant } => {
                    core.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
                    let response = core.dispatch(&request, shared.lock_queue().len());
                    core.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
                    core.tenants.release(&tenant);
                    response
                }
                Admitted::Rejected(response) => response,
            }
        };
        let elapsed_us = started.elapsed().as_micros();
        core.metrics.count_response(response.status);
        let response = response.with_header("X-Fcpn-Elapsed-Us", &elapsed_us.to_string());
        let close = request.wants_close()
            || served + 1 >= core.config.max_requests_per_connection
            || core.shutting_down()
            || core.is_draining();
        let write_deadline = Instant::now() + core.config.response_write_deadline;
        if http::write_response_deadline(reader.get_mut(), &response, close, Some(write_deadline))
            .is_err()
            || close
        {
            return;
        }
    }
}
