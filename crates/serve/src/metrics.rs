//! Lock-free request counters behind `GET /metrics`.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counters the daemon maintains with relaxed atomics (exactness across a racing read
/// is not required; monotonicity per counter is).
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Requests fully read and dispatched (any endpoint, any outcome).
    pub requests_total: AtomicU64,
    /// Per-endpoint dispatch counts.
    pub schedule_requests: AtomicU64,
    /// See [`Metrics::schedule_requests`].
    pub analyze_requests: AtomicU64,
    /// See [`Metrics::schedule_requests`].
    pub codegen_requests: AtomicU64,
    /// See [`Metrics::schedule_requests`].
    pub synthesize_requests: AtomicU64,
    /// 2xx responses written.
    pub responses_ok: AtomicU64,
    /// 4xx responses written.
    pub responses_client_error: AtomicU64,
    /// 5xx responses written (including saturation 503s).
    pub responses_server_error: AtomicU64,
    /// Connections rejected at accept time because the queue was full.
    pub rejected_saturated: AtomicU64,
    /// Requests answered 429 because a tenant's token bucket ran dry.
    pub rejected_rate_limited: AtomicU64,
    /// Requests answered 429 because a tenant hit its in-flight quota.
    pub rejected_quota: AtomicU64,
    /// Keep-alive connections dropped for sitting idle past the idle timeout.
    pub idle_timeouts: AtomicU64,
    /// Connections dropped mid-request/mid-response for blowing a read or write
    /// deadline (the slow-loris counters, both directions).
    pub deadline_disconnects: AtomicU64,
    /// Connections currently open on the event-driven front end (gauge; 0 on the
    /// threaded path, which has no per-connection registry).
    pub open_connections: AtomicU64,
    /// Requests cut short by their deadline guard.
    pub deadline_exceeded: AtomicU64,
    /// Requests whose engine stage cancelled *itself* mid-loop (its
    /// [`CancelToken`](fcpn_petri::CancelToken) fired inside an exploration or sweep),
    /// as opposed to deadlines caught between stages. Always ≤
    /// [`Metrics::deadline_exceeded`].
    pub cancelled_in_stage: AtomicU64,
    /// Requests the process memory governor refused: shed with `503` + `Retry-After`
    /// when the pool is contended by in-flight work, or rejected with `400` when the
    /// budget asked for exceeds the pool outright (only moves with `--mem-budget`
    /// armed).
    pub rejected_memory: AtomicU64,
    /// Requests whose engine stage failed a charge against its per-request
    /// [`MemoryBudget`](fcpn_petri::MemoryBudget) — the typed `ResourceExhausted`
    /// path, answered `503` and never cached.
    pub resource_exhausted: AtomicU64,
    /// Requests currently being parsed/handled by a worker.
    pub in_flight: AtomicU64,
    /// Connections accepted into the queue.
    pub connections_accepted: AtomicU64,
    /// Entries reloaded from the persistent cache logs at startup (0 without
    /// persistence; set once at spawn).
    pub persist_recovered_entries: AtomicU64,
    /// Torn or corrupt log tails truncated during startup recovery (set once at spawn).
    pub persist_torn_tail_truncations: AtomicU64,
}

impl Metrics {
    /// Fresh counters; `started` anchors the uptime report.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            schedule_requests: AtomicU64::new(0),
            analyze_requests: AtomicU64::new(0),
            codegen_requests: AtomicU64::new(0),
            synthesize_requests: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            rejected_saturated: AtomicU64::new(0),
            rejected_rate_limited: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
            deadline_disconnects: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled_in_stage: AtomicU64::new(0),
            rejected_memory: AtomicU64::new(0),
            resource_exhausted: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            persist_recovered_entries: AtomicU64::new(0),
            persist_torn_tail_truncations: AtomicU64::new(0),
        }
    }

    /// Tallies a written response into the right status class.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `/metrics` JSON body. Cache counters, queue state, front-end
    /// identity and the per-tenant breakdown live outside this struct and arrive via
    /// [`RuntimeStats`].
    pub fn render(&self, stats: RuntimeStats) -> String {
        let get = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("uptime_s", Json::from(self.started.elapsed().as_secs())),
            ("front_end", Json::from(stats.front_end)),
            ("requests_total", get(&self.requests_total)),
            ("schedule_requests", get(&self.schedule_requests)),
            ("analyze_requests", get(&self.analyze_requests)),
            ("codegen_requests", get(&self.codegen_requests)),
            ("synthesize_requests", get(&self.synthesize_requests)),
            ("responses_ok", get(&self.responses_ok)),
            ("responses_client_error", get(&self.responses_client_error)),
            ("responses_server_error", get(&self.responses_server_error)),
            ("rejected_saturated", get(&self.rejected_saturated)),
            ("rejected_rate_limited", get(&self.rejected_rate_limited)),
            ("rejected_quota", get(&self.rejected_quota)),
            ("deadline_exceeded", get(&self.deadline_exceeded)),
            ("cancelled_in_stage", get(&self.cancelled_in_stage)),
            ("rejected_memory", get(&self.rejected_memory)),
            ("resource_exhausted", get(&self.resource_exhausted)),
            ("mem_bytes_in_use", Json::from(stats.mem_bytes_in_use)),
            ("mem_budget_bytes", Json::from(stats.mem_budget_bytes)),
            ("idle_timeouts", get(&self.idle_timeouts)),
            ("deadline_disconnects", get(&self.deadline_disconnects)),
            ("in_flight", get(&self.in_flight)),
            ("open_connections", get(&self.open_connections)),
            ("connections_accepted", get(&self.connections_accepted)),
            ("cache_hits", Json::from(stats.cache_hits)),
            ("cache_misses", Json::from(stats.cache_misses)),
            ("cache_entries", Json::from(stats.cache_entries)),
            ("cache_evictions", Json::from(stats.cache_evictions)),
            ("cache_bytes", Json::from(stats.cache_bytes)),
            (
                "persist_recovered_entries",
                get(&self.persist_recovered_entries),
            ),
            (
                "persist_torn_tail_truncations",
                get(&self.persist_torn_tail_truncations),
            ),
            ("queue_depth", Json::from(stats.queue_depth)),
            ("queue_capacity", Json::from(stats.queue_capacity)),
            ("workers", Json::from(stats.workers)),
            // Last on purpose: the nested per-tenant objects repeat key names like
            // `in_flight`, and flat text scans over this body (the chaos harness, shell
            // smoke tests) must hit the top-level counters first.
            ("tenants", stats.tenants),
        ])
        .render()
    }
}

/// Server-side state that accompanies the atomic counters in one `/metrics` render:
/// cache counters, dispatch-queue occupancy, which front end is running, and the
/// per-tenant breakdown.
#[derive(Debug)]
pub struct RuntimeStats {
    /// `"reactor"` or `"threaded"`.
    pub front_end: &'static str,
    /// Whole-response cache hits.
    pub cache_hits: u64,
    /// Whole-response cache misses.
    pub cache_misses: u64,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Cache evictions (LRU + byte budget).
    pub cache_evictions: u64,
    /// Bytes held by cached bodies.
    pub cache_bytes: u64,
    /// Bytes the process memory governor currently holds reserved for in-flight
    /// requests (gauge; 0 when `--mem-budget` is not armed).
    pub mem_bytes_in_use: u64,
    /// The process memory governor's total byte budget (0 when not armed).
    pub mem_budget_bytes: u64,
    /// Requests parked in the dispatch queue right now.
    pub queue_depth: usize,
    /// Dispatch queue capacity.
    pub queue_capacity: usize,
    /// CPU worker threads.
    pub workers: usize,
    /// Per-tenant counters ([`TenantGovernor::render_json`](crate::tenant::TenantGovernor::render_json)).
    pub tenants: Json,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn render_is_valid_json_with_all_counters() {
        let metrics = Metrics::new();
        metrics.requests_total.fetch_add(3, Ordering::Relaxed);
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(503);
        metrics
            .persist_recovered_entries
            .fetch_add(11, Ordering::Relaxed);
        let body = metrics.render(RuntimeStats {
            front_end: "threaded",
            cache_hits: 5,
            cache_misses: 7,
            cache_entries: 2,
            cache_evictions: 9,
            cache_bytes: 4096,
            mem_bytes_in_use: 1234,
            mem_budget_bytes: 1 << 20,
            queue_depth: 1,
            queue_capacity: 64,
            workers: 8,
            tenants: Json::obj([(
                "default",
                Json::obj([
                    ("admitted", Json::from(3u64)),
                    ("rejected", Json::from(0u64)),
                    ("in_flight", Json::from(0u64)),
                ]),
            )]),
        });
        let value = parse(&body).unwrap();
        assert_eq!(value.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("synthesize_requests").unwrap().as_u64(), Some(0));
        assert_eq!(
            value.get("rejected_rate_limited").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(value.get("idle_timeouts").unwrap().as_u64(), Some(0));
        assert_eq!(value.get("open_connections").unwrap().as_u64(), Some(0));
        assert_eq!(
            value
                .get("tenants")
                .unwrap()
                .get("default")
                .unwrap()
                .get("admitted")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        // Flat scans must hit top-level counters before the nested tenant objects.
        assert!(body.find("\"in_flight\"").unwrap() < body.find("\"tenants\"").unwrap());
        assert_eq!(value.get("rejected_memory").unwrap().as_u64(), Some(0));
        assert_eq!(value.get("resource_exhausted").unwrap().as_u64(), Some(0));
        assert_eq!(value.get("mem_bytes_in_use").unwrap().as_u64(), Some(1234));
        assert_eq!(
            value.get("mem_budget_bytes").unwrap().as_u64(),
            Some(1 << 20)
        );
        assert!(body.find("\"mem_bytes_in_use\"").unwrap() < body.find("\"tenants\"").unwrap());
        assert_eq!(value.get("cancelled_in_stage").unwrap().as_u64(), Some(0));
        assert_eq!(value.get("cache_evictions").unwrap().as_u64(), Some(9));
        assert_eq!(value.get("cache_bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(
            value.get("persist_recovered_entries").unwrap().as_u64(),
            Some(11)
        );
        assert_eq!(
            value.get("persist_torn_tail_truncations").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(value.get("responses_ok").unwrap().as_u64(), Some(1));
        assert_eq!(
            value.get("responses_client_error").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            value.get("responses_server_error").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(value.get("cache_hits").unwrap().as_u64(), Some(5));
        assert_eq!(value.get("queue_capacity").unwrap().as_u64(), Some(64));
    }
}
