//! Lock-free request counters behind `GET /metrics`.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counters the daemon maintains with relaxed atomics (exactness across a racing read
/// is not required; monotonicity per counter is).
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Requests fully read and dispatched (any endpoint, any outcome).
    pub requests_total: AtomicU64,
    /// Per-endpoint dispatch counts.
    pub schedule_requests: AtomicU64,
    /// See [`Metrics::schedule_requests`].
    pub analyze_requests: AtomicU64,
    /// See [`Metrics::schedule_requests`].
    pub codegen_requests: AtomicU64,
    /// 2xx responses written.
    pub responses_ok: AtomicU64,
    /// 4xx responses written.
    pub responses_client_error: AtomicU64,
    /// 5xx responses written (including saturation 503s).
    pub responses_server_error: AtomicU64,
    /// Connections rejected at accept time because the queue was full.
    pub rejected_saturated: AtomicU64,
    /// Requests cut short by their deadline guard.
    pub deadline_exceeded: AtomicU64,
    /// Requests whose engine stage cancelled *itself* mid-loop (its
    /// [`CancelToken`](fcpn_petri::CancelToken) fired inside an exploration or sweep),
    /// as opposed to deadlines caught between stages. Always ≤
    /// [`Metrics::deadline_exceeded`].
    pub cancelled_in_stage: AtomicU64,
    /// Requests currently being parsed/handled by a worker.
    pub in_flight: AtomicU64,
    /// Connections accepted into the queue.
    pub connections_accepted: AtomicU64,
    /// Entries reloaded from the persistent cache logs at startup (0 without
    /// persistence; set once at spawn).
    pub persist_recovered_entries: AtomicU64,
    /// Torn or corrupt log tails truncated during startup recovery (set once at spawn).
    pub persist_torn_tail_truncations: AtomicU64,
}

impl Metrics {
    /// Fresh counters; `started` anchors the uptime report.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            schedule_requests: AtomicU64::new(0),
            analyze_requests: AtomicU64::new(0),
            codegen_requests: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            responses_client_error: AtomicU64::new(0),
            responses_server_error: AtomicU64::new(0),
            rejected_saturated: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled_in_stage: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            persist_recovered_entries: AtomicU64::new(0),
            persist_torn_tail_truncations: AtomicU64::new(0),
        }
    }

    /// Tallies a written response into the right status class.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_ok,
            400..=499 => &self.responses_client_error,
            _ => &self.responses_server_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `/metrics` JSON body. Cache counters and queue state live outside
    /// this struct and are passed in by the server.
    #[allow(clippy::too_many_arguments)]
    pub fn render(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_entries: usize,
        cache_evictions: u64,
        cache_bytes: u64,
        queue_depth: usize,
        queue_capacity: usize,
        workers: usize,
    ) -> String {
        let get = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("uptime_s", Json::from(self.started.elapsed().as_secs())),
            ("requests_total", get(&self.requests_total)),
            ("schedule_requests", get(&self.schedule_requests)),
            ("analyze_requests", get(&self.analyze_requests)),
            ("codegen_requests", get(&self.codegen_requests)),
            ("responses_ok", get(&self.responses_ok)),
            ("responses_client_error", get(&self.responses_client_error)),
            ("responses_server_error", get(&self.responses_server_error)),
            ("rejected_saturated", get(&self.rejected_saturated)),
            ("deadline_exceeded", get(&self.deadline_exceeded)),
            ("cancelled_in_stage", get(&self.cancelled_in_stage)),
            ("in_flight", get(&self.in_flight)),
            ("connections_accepted", get(&self.connections_accepted)),
            ("cache_hits", Json::from(cache_hits)),
            ("cache_misses", Json::from(cache_misses)),
            ("cache_entries", Json::from(cache_entries)),
            ("cache_evictions", Json::from(cache_evictions)),
            ("cache_bytes", Json::from(cache_bytes)),
            (
                "persist_recovered_entries",
                get(&self.persist_recovered_entries),
            ),
            (
                "persist_torn_tail_truncations",
                get(&self.persist_torn_tail_truncations),
            ),
            ("queue_depth", Json::from(queue_depth)),
            ("queue_capacity", Json::from(queue_capacity)),
            ("workers", Json::from(workers)),
        ])
        .render()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn render_is_valid_json_with_all_counters() {
        let metrics = Metrics::new();
        metrics.requests_total.fetch_add(3, Ordering::Relaxed);
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(503);
        metrics
            .persist_recovered_entries
            .fetch_add(11, Ordering::Relaxed);
        let body = metrics.render(5, 7, 2, 9, 4096, 1, 64, 8);
        let value = parse(&body).unwrap();
        assert_eq!(value.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("cancelled_in_stage").unwrap().as_u64(), Some(0));
        assert_eq!(value.get("cache_evictions").unwrap().as_u64(), Some(9));
        assert_eq!(value.get("cache_bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(
            value.get("persist_recovered_entries").unwrap().as_u64(),
            Some(11)
        );
        assert_eq!(
            value.get("persist_torn_tail_truncations").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(value.get("responses_ok").unwrap().as_u64(), Some(1));
        assert_eq!(
            value.get("responses_client_error").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            value.get("responses_server_error").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(value.get("cache_hits").unwrap().as_u64(), Some(5));
        assert_eq!(value.get("queue_capacity").unwrap().as_u64(), Some(64));
    }
}
