//! Fault-injection probes for a live daemon: the building blocks of the chaos harness.
//!
//! The unit and socket tests exercise the daemon in-process; this module exercises it
//! as a *process* — spawn the real binary, drip bytes at it, cut connections mid-body,
//! `kill -9` it mid-write, restart it on the same cache directory — and exposes the
//! measurements the harness asserts on (cancellation latency, post-recovery response
//! bytes). Everything here is plain blocking `std::net`/`std::process`, matching the
//! zero-dependency rule; `fcpn-bench`'s `chaos_harness` example drives these probes
//! end-to-end and the CI `chaos-smoke` job runs them against a release build.

use crate::load::{open_idle_sockets, Client, ClientResponse};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Sends `SIGTERM` to `pid` — the graceful-drain end of the shutdown contract,
/// shelling out to `kill(1)` to stay inside the zero-dependency rule.
///
/// # Errors
///
/// Propagates the spawn failure, or [`io::ErrorKind::Other`] when `kill` exits
/// non-zero (e.g. the process is already gone).
pub fn sigterm(pid: u32) -> io::Result<()> {
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(pid.to_string())
        .status()?;
    if status.success() {
        Ok(())
    } else {
        Err(io::Error::other(format!("kill -TERM {pid} failed")))
    }
}

/// A daemon running as a real child process, with its readiness line parsed.
///
/// Dropping the handle kills the child (`SIGKILL`) and reaps it, so a panicking
/// harness never leaks daemons.
#[derive(Debug)]
pub struct DaemonProcess {
    child: Child,
    addr: String,
}

impl DaemonProcess {
    /// Spawns `binary` with `args` and blocks until it prints its readiness line
    /// (`fcpn-served listening on <addr> …`) on stdout, from which the bound address
    /// is parsed — pass `--addr 127.0.0.1:0` and let the daemon pick a free port.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure; fails with [`io::ErrorKind::InvalidData`] when
    /// the process exits (or closes stdout) before announcing readiness.
    pub fn spawn(binary: &str, args: &[&str]) -> io::Result<DaemonProcess> {
        let mut child = Command::new(binary)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        for line in &mut lines {
            let line = line?;
            if let Some(rest) = line.split("listening on ").nth(1) {
                let addr = rest.split_whitespace().next().unwrap_or("").to_string();
                if !addr.is_empty() {
                    // Keep draining stdout in the background so the daemon never
                    // blocks on a full pipe if it logs later.
                    std::thread::spawn(move || for _ in lines {});
                    return Ok(DaemonProcess { child, addr });
                }
            }
        }
        let _ = child.kill();
        let _ = child.wait();
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "daemon exited before printing its readiness line",
        ))
    }

    /// The address the daemon reported binding.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The child's process id (for `kill -TERM` style signalling by the harness).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// `kill -9`: the crash end of the crash-safety contract. No flush, no drain —
    /// the persistent cache may be torn mid-record, which recovery must survive.
    ///
    /// # Errors
    ///
    /// Propagates kill/wait failures (already-exited children are not an error).
    pub fn kill9(mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        Ok(())
    }

    /// Waits for the child to exit on its own (e.g. after a `SIGTERM` drain) and
    /// returns whether it exited with status 0.
    ///
    /// # Errors
    ///
    /// Propagates wait failures.
    pub fn wait_success(mut self) -> io::Result<bool> {
        Ok(self.child.wait()?.success())
    }
}

impl Drop for DaemonProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What [`probe_cancellation`] measured: the response status and how long the daemon
/// took to produce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancellationProbe {
    /// HTTP status of the response (`503` when the stage cancelled itself).
    pub status: u16,
    /// Wall-clock from sending the request to receiving the full response.
    pub elapsed: Duration,
}

/// Fires one uncached `/schedule` at `addr` with the given `deadline_ms` and measures
/// how promptly the daemon answers — the cancellation-latency probe. `threads=1` keeps
/// the sweep on one worker so the measured latency is the cooperative polling stride,
/// not thread teardown.
///
/// # Errors
///
/// Propagates connect/request failures.
pub fn probe_cancellation(
    addr: &str,
    net_text: &str,
    deadline_ms: u64,
    timeout: Duration,
) -> io::Result<CancellationProbe> {
    let mut client = Client::connect(addr, timeout)?;
    let started = Instant::now();
    let response = client.request(
        "POST",
        &format!("/schedule?deadline_ms={deadline_ms}&cache=0&threads=1"),
        net_text.as_bytes(),
    )?;
    Ok(CancellationProbe {
        status: response.status,
        elapsed: started.elapsed(),
    })
}

/// Sends one request and returns the full response (status, headers, body) — the
/// harness's byte-comparison primitive. Connects with a jittered-backoff retry, since
/// the harness routinely probes daemons that are mid-restart or shedding connections.
///
/// # Errors
///
/// Propagates request failures, or the last connect failure after the retries.
pub fn fetch(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut client = Client::connect_with_retry(addr, timeout, 3)?;
    client.request(method, path_and_query, body)
}

/// Slow-loris probe: opens a connection that promises a body and then drips a few
/// bytes of it slowly before going silent, holding the socket open. Returns once the
/// daemon has (correctly) given up on the connection — closed it — or `hold` elapsed.
/// Either way the caller should verify `/healthz` still answers promptly: the point is
/// that a dripping client costs the daemon a bounded amount of worker time.
///
/// # Errors
///
/// Propagates the connect failure (write errors after connect mean the daemon already
/// dropped us, which is success for this probe).
pub fn probe_slow_loris(addr: &str, hold: Duration) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let head = b"POST /schedule HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
    if stream.write_all(head).is_err() {
        return Ok(());
    }
    let until = Instant::now() + hold;
    while Instant::now() < until {
        // One byte per tick: each socket read succeeds, so only the request read
        // *deadline* (not the per-read timeout) can free the worker.
        if stream
            .write_all(b"x")
            .and_then(|()| stream.flush())
            .is_err()
        {
            return Ok(()); // daemon dropped us — the guard worked
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(())
}

/// Mid-request disconnect probe: promises a large body, sends half of it, and drops
/// the socket. The daemon must notice the EOF, discard the partial request without
/// answering, and return the worker to the pool — verified by the caller probing
/// `/healthz` afterwards.
///
/// # Errors
///
/// Propagates the connect failure (later write errors mean the daemon beat us to the
/// close, which is fine).
pub fn probe_mid_request_disconnect(addr: &str, body: &[u8]) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let head = format!(
        "POST /schedule HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&body[..body.len() / 2]);
    let _ = stream.flush();
    drop(stream); // mid-body RST/FIN
    Ok(())
}

/// What [`probe_connection_flood`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodProbe {
    /// Idle sockets successfully opened and held for the duration of the probe.
    pub idle_held: usize,
    /// Status of the real request sent while the flood was parked.
    pub status: u16,
    /// Latency of that real request, flood and all.
    pub elapsed: Duration,
}

/// Connection-flood probe: opens `idle` sockets that never send a byte, holds them all
/// open, then fires one real request and measures its latency. On an event-driven
/// front end the parked sockets cost a few KiB each and zero threads, so the real
/// request must answer as if the flood were not there; a thread-per-connection server
/// would have exhausted its workers long before 10k.
///
/// The idle sockets are dropped when the probe returns.
///
/// # Errors
///
/// Propagates socket-open failures (including `EMFILE` if the *client* runs out of
/// fds — raise `ulimit -n` before asking for 10k) and request failures.
pub fn probe_connection_flood(
    addr: &str,
    idle: usize,
    net_text: &str,
    timeout: Duration,
) -> io::Result<FloodProbe> {
    let parked = open_idle_sockets(addr, idle)?;
    let mut client = Client::connect(addr, timeout)?;
    let started = Instant::now();
    let response = client.request("POST", "/schedule?threads=1", net_text.as_bytes())?;
    let probe = FloodProbe {
        idle_held: parked.len(),
        status: response.status,
        elapsed: started.elapsed(),
    };
    drop(parked);
    Ok(probe)
}

/// What [`probe_slow_loris_fleet`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LorisFleetProbe {
    /// Dripping sockets the fleet managed to open.
    pub opened: usize,
    /// How many the daemon had dropped (write error on the drip) by the time `hold`
    /// elapsed. With deadlines shorter than `hold`, this should be all of them.
    pub dropped_by_daemon: usize,
}

/// Slow-loris *fleet*: `count` connections all promising a large body and dripping one
/// byte per tick, driven from this single thread over non-blocking sockets. The point
/// is scale — one loris is annoying, five hundred must still cost the daemon nothing
/// but per-connection buffers, and every one of them must be cut by the read deadline
/// rather than holding a slot forever.
///
/// # Errors
///
/// Propagates the initial connect failures only; drip-time write errors are the
/// *daemon* dropping us, which is the success condition and is counted, not raised.
pub fn probe_slow_loris_fleet(
    addr: &str,
    count: usize,
    hold: Duration,
) -> io::Result<LorisFleetProbe> {
    let head = b"POST /schedule HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
    let mut fleet: Vec<Option<TcpStream>> = Vec::with_capacity(count);
    for _ in 0..count {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // The head fits comfortably in the socket buffer, so a blocking write here
        // cannot stall; everything after goes non-blocking.
        let _ = stream.write_all(head);
        stream.set_nonblocking(true)?;
        fleet.push(Some(stream));
    }
    let opened = fleet.len();
    let mut dropped = 0usize;
    let until = Instant::now() + hold;
    while Instant::now() < until && dropped < opened {
        for slot in &mut fleet {
            let Some(stream) = slot else { continue };
            match stream.write(b"x") {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Connection reset / broken pipe: the daemon cut this loris.
                    dropped += 1;
                    *slot = None;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(LorisFleetProbe {
        opened,
        dropped_by_daemon: dropped,
    })
}

/// What [`probe_rate_limit`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitProbe {
    /// Requests in the burst answered `200`.
    pub ok: usize,
    /// Requests in the burst answered `429`.
    pub limited: usize,
    /// The `Retry-After` value (seconds) parsed from the first `429`.
    pub retry_after_s: u64,
    /// Whether a request sent after waiting out `Retry-After` succeeded.
    pub recovered: bool,
}

/// Rate-limit probe: bursts `burst` requests under one tenant header as fast as the
/// connection allows, expecting the token bucket to run dry partway through — `429`s
/// carrying a parseable `Retry-After` — and then verifies that waiting out the
/// advertised window actually restores service for that tenant.
///
/// Run this against a daemon started with `--tenant-rate`; with metering disabled
/// (the default) every request is admitted and `limited` stays 0.
///
/// # Errors
///
/// Propagates connect/request failures, and [`io::ErrorKind::InvalidData`] when a
/// `429` arrives without a parseable `Retry-After` — the header contract is the point
/// of the probe.
pub fn probe_rate_limit(
    addr: &str,
    tenant: &str,
    burst: usize,
    net_text: &str,
    timeout: Duration,
) -> io::Result<RateLimitProbe> {
    let mut client = Client::connect(addr, timeout)?;
    let headers = [("X-Fcpn-Tenant", tenant)];
    let mut ok = 0usize;
    let mut limited = 0usize;
    let mut retry_after_s = 0u64;
    for _ in 0..burst {
        let response = client.request_with_headers(
            "POST",
            "/schedule?threads=1",
            &headers,
            net_text.as_bytes(),
        )?;
        match response.status {
            200 => ok += 1,
            429 => {
                limited += 1;
                let value = response.header("retry-after").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "429 without Retry-After")
                })?;
                let parsed: u64 = value.trim().parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unparseable Retry-After: {value:?}"),
                    )
                })?;
                if retry_after_s == 0 {
                    retry_after_s = parsed;
                }
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected status {other} during rate-limit burst"
                )))
            }
        }
    }
    let mut recovered = false;
    if limited > 0 {
        // Wait out the advertised window (bounded — a daemon advertising an hour is
        // its own kind of bug) and confirm the tenant is served again.
        std::thread::sleep(Duration::from_secs(retry_after_s.clamp(1, 10)));
        let response = client.request_with_headers(
            "POST",
            "/schedule?threads=1",
            &headers,
            net_text.as_bytes(),
        )?;
        recovered = response.status == 200;
    }
    Ok(RateLimitProbe {
        ok,
        limited,
        retry_after_s,
        recovered,
    })
}

/// Asserts the daemon at `addr` answers `/healthz` with `200` within `timeout` —
/// the "still alive and taking work" check after every fault probe. Connects with a
/// jittered-backoff retry so a daemon busy shedding a fault wave is polled, not
/// declared dead on the first refused socket.
///
/// # Errors
///
/// Propagates request failures, or the last connect failure after the retries.
pub fn healthz_ok(addr: &str, timeout: Duration) -> io::Result<bool> {
    let mut client = Client::connect_with_retry(addr, timeout, 3)?;
    let response = client.request("GET", "/healthz", b"")?;
    Ok(response.status == 200)
}

/// What [`probe_memory_pressure`] measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPressureProbe {
    /// Memory-bomb requests fired.
    pub requests: usize,
    /// `400`s from the process governor: the budget asked for exceeds the pool, so no
    /// retry can ever make it admissible.
    pub rejected: usize,
    /// `503`s from the process governor (budget affordable, but the pool was held by
    /// in-flight work at that moment).
    pub shed: usize,
    /// Typed `503`s from an engine stage exhausting its per-request budget (the body
    /// carries `stage` / `limit_bytes` / `requested_bytes`).
    pub exhausted: usize,
    /// `200`s (possible when the budgets asked for are actually affordable).
    pub ok: usize,
    /// Anything else — should stay 0.
    pub other: usize,
    /// Whether `/healthz` answered `200` after every round: the daemon degraded, it
    /// never died.
    pub healthy_throughout: bool,
}

/// Memory-pressure probe: fires memory-bomb nets at a daemon running under
/// `--mem-budget` and verifies it *degrades* instead of dying. Each round sends the
/// bomb twice — once asking for a per-request budget bigger than the whole pool
/// (which the process governor must reject with a non-retryable `400`) and once with
/// a budget too small for the exploration (which the engine must fail with the typed
/// exhaustion `503`) — then checks `/healthz` still answers `200`. Every response is
/// classified; an abort, OOM kill or hung worker surfaces as a connect/request error
/// instead.
///
/// # Errors
///
/// Propagates connect/request failures — under this probe the daemon must keep
/// answering, so a dropped connection is a finding, not noise.
pub fn probe_memory_pressure(
    addr: &str,
    bomb_text: &str,
    rounds: usize,
    timeout: Duration,
) -> io::Result<MemoryPressureProbe> {
    let mut probe = MemoryPressureProbe {
        requests: 0,
        rejected: 0,
        shed: 0,
        exhausted: 0,
        ok: 0,
        other: 0,
        healthy_throughout: true,
    };
    let targets = [
        // Clamped to the per-request cap, which still dwarfs any sane --mem-budget:
        // the governor can never cover it and must reject it outright.
        format!(
            "/analyze?checks=reachability&cache=0&memory_budget_bytes={}",
            u64::MAX
        ),
        // Below the 64KiB metering chunk: the engine's first charge fails typed.
        "/analyze?checks=reachability&cache=0&memory_budget_bytes=4096".to_string(),
    ];
    for _ in 0..rounds {
        for target in &targets {
            let mut client = Client::connect_with_retry(addr, timeout, 3)?;
            let response = client.request("POST", target, bomb_text.as_bytes())?;
            probe.requests += 1;
            match response.status {
                200 => probe.ok += 1,
                400 if response.body.contains("memory pool") => probe.rejected += 1,
                503 if response.body.contains("\"stage\"") => probe.exhausted += 1,
                503 => probe.shed += 1,
                _ => probe.other += 1,
            }
        }
        if !healthz_ok(addr, timeout)? {
            probe.healthy_throughout = false;
        }
    }
    Ok(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::time::Duration;

    fn spawn_local() -> crate::server::ServerHandle {
        Server::spawn(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            request_read_deadline: Duration::from_millis(300),
            ..ServerConfig::default()
        })
        .expect("spawn in-process daemon")
    }

    #[test]
    fn disconnect_mid_body_leaves_daemon_healthy() {
        let handle = spawn_local();
        let addr = handle.addr().to_string();
        probe_mid_request_disconnect(&addr, &[b'n'; 4096]).unwrap();
        assert!(healthz_ok(&addr, Duration::from_secs(5)).unwrap());
        handle.shutdown();
    }

    #[test]
    fn slow_loris_is_cut_by_the_read_deadline() {
        let handle = spawn_local();
        let addr = handle.addr().to_string();
        // Hold longer than the 300ms request read deadline: the daemon must drop us.
        probe_slow_loris(&addr, Duration::from_millis(800)).unwrap();
        assert!(healthz_ok(&addr, Duration::from_secs(5)).unwrap());
        handle.shutdown();
    }

    #[test]
    fn cancellation_probe_reports_status_and_latency() {
        let handle = spawn_local();
        let addr = handle.addr().to_string();
        let net = fcpn_petri::io::to_text(&fcpn_petri::gallery::figure4());
        // A trivially fast net completes well inside a generous deadline.
        let probe = probe_cancellation(&addr, &net, 10_000, Duration::from_secs(5)).unwrap();
        assert_eq!(probe.status, 200);
        handle.shutdown();
    }

    #[test]
    fn rate_limit_probe_sees_429_and_recovers() {
        let handle = Server::spawn(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            tenant: crate::tenant::TenantPolicy {
                rate: 2.0,
                burst: 2.0,
                ..crate::tenant::TenantPolicy::default()
            },
            ..ServerConfig::default()
        })
        .expect("spawn metered daemon");
        let addr = handle.addr().to_string();
        let net = fcpn_petri::io::to_text(&fcpn_petri::gallery::figure4());
        let probe = probe_rate_limit(&addr, "acme", 6, &net, Duration::from_secs(5)).unwrap();
        assert!(probe.ok >= 2, "burst head should pass: {probe:?}");
        assert!(probe.limited > 0, "bucket should run dry: {probe:?}");
        assert!(
            probe.retry_after_s >= 1,
            "Retry-After must be >= 1: {probe:?}"
        );
        assert!(
            probe.recovered,
            "tenant should recover after the window: {probe:?}"
        );
        handle.shutdown();
    }

    #[test]
    fn memory_pressure_probe_degrades_without_dying() {
        let handle = Server::spawn(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            mem_budget_bytes: Some(1 << 20),
            ..ServerConfig::default()
        })
        .expect("spawn governed daemon");
        let addr = handle.addr().to_string();
        let bomb = fcpn_petri::io::to_text(&fcpn_petri::gallery::memory_bomb(6));
        let probe = probe_memory_pressure(&addr, &bomb, 3, Duration::from_secs(10)).unwrap();
        assert_eq!(probe.requests, 6);
        assert!(
            probe.rejected >= 3,
            "governor should reject over-pool budgets outright: {probe:?}"
        );
        assert!(
            probe.exhausted >= 3,
            "tiny budgets should exhaust typed: {probe:?}"
        );
        assert_eq!(probe.other, 0, "no unexpected statuses: {probe:?}");
        assert!(
            probe.healthy_throughout,
            "daemon must stay healthy: {probe:?}"
        );
        // After the pressure, a normal request still computes.
        let net = fcpn_petri::io::to_text(&fcpn_petri::gallery::figure4());
        let response = fetch(
            &addr,
            "POST",
            "/schedule",
            net.as_bytes(),
            Duration::from_secs(10),
        )
        .unwrap();
        assert_eq!(response.status, 200);
        handle.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn connection_flood_probe_answers_through_idle_sockets() {
        let handle = spawn_local();
        let addr = handle.addr().to_string();
        let net = fcpn_petri::io::to_text(&fcpn_petri::gallery::figure4());
        let probe = probe_connection_flood(&addr, 128, &net, Duration::from_secs(10)).unwrap();
        assert_eq!(probe.idle_held, 128);
        assert_eq!(probe.status, 200);
        handle.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn slow_loris_fleet_is_cut_by_the_read_deadline() {
        let handle = spawn_local();
        let addr = handle.addr().to_string();
        // 300ms read deadline vs a 3s hold: every loris must be cut.
        let probe = probe_slow_loris_fleet(&addr, 32, Duration::from_secs(3)).unwrap();
        assert_eq!(probe.opened, 32);
        assert!(
            probe.dropped_by_daemon >= probe.opened / 2,
            "daemon should shed the fleet: {probe:?}"
        );
        assert!(healthz_ok(&addr, Duration::from_secs(5)).unwrap());
        handle.shutdown();
    }
}
