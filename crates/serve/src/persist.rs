//! Crash-safe log-structured persistence for the result cache.
//!
//! Each cache shard owns one append-only record file (`shard-NNNN.log` under the
//! configured cache directory). A file is a fixed 8-byte magic header followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────┬───────────────────────────────┐
//! │ magic 8B │ len: u32 LE  │ check: u64 LE│ payload: len bytes            │
//! │ FCPNLOG1 │ payload size │ fingerprint  │ key u128 LE · status u16 LE · │
//! │          │              │ of payload   │ body UTF-8                    │
//! └──────────┴──────────────┴──────────────┴───────────────────────────────┘
//! ```
//!
//! The checksum is the low 64 bits of the same two-lane
//! [`Fingerprint128`] fold the cache keys use, so no new
//! dependency is needed. Appends are *not* fsynced — the crash-safety contract is that
//! a torn or corrupt tail is **detected and truncated** on recovery, never
//! interpreted: recovery walks records sequentially and cuts the file at the first
//! record whose length prefix overruns the file, whose checksum mismatches, or whose
//! payload fails to parse. Everything before the cut is intact by construction
//! (checksummed), everything after is discarded and recomputed on demand — a warm
//! restart at worst loses the entries appended in the final moments before a crash.
//!
//! Logs grow monotonically (eviction does not rewrite them), so once a log exceeds a
//! multiple of its shard's byte budget it is **compacted**: the shard's live entries
//! are written to a temporary file, fsynced, and atomically renamed over the log —
//! readers of the old inode are unaffected and a crash at any point leaves either the
//! complete old file or the complete new one.

use fcpn_petri::Fingerprint128;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a result-cache shard log, version 1.
const MAGIC: &[u8; 8] = b"FCPNLOG1";

/// Fixed bytes per record before the payload: `len: u32` + `check: u64`.
const RECORD_HEADER: usize = 4 + 8;

/// Payload bytes before the body: `key: u128` + `status: u16`.
const PAYLOAD_HEADER: usize = 16 + 2;

/// Upper bound on a single record's payload; anything larger is treated as corruption
/// (the daemon's HTTP body limit is 1 MiB, so no legitimate response approaches this).
const MAX_RECORD: usize = 64 << 20;

/// What a recovery pass found in one shard log (aggregated across shards by the
/// cache and surfaced on `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Intact entries reloaded from the logs.
    pub recovered_entries: u64,
    /// Truncation events: torn/corrupt tails cut off, plus unrecognisable (garbage or
    /// short) headers that reset a log wholesale.
    pub torn_tail_truncations: u64,
}

impl RecoveryStats {
    /// Component-wise sum, for aggregating per-shard stats.
    pub(crate) fn merge(&mut self, other: RecoveryStats) {
        self.recovered_entries += other.recovered_entries;
        self.torn_tail_truncations += other.torn_tail_truncations;
    }
}

/// One entry reloaded from a shard log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RecoveredEntry {
    pub(crate) key: u128,
    pub(crate) status: u16,
    pub(crate) body: String,
}

/// The append-only record file of one cache shard.
#[derive(Debug)]
pub(crate) struct ShardLog {
    file: File,
    path: PathBuf,
    /// Current file size (header + records), maintained without re-statting.
    bytes: u64,
}

/// Checksum of a record payload: the low 64 bits of the two-lane fingerprint fold.
fn checksum(payload: &[u8]) -> u64 {
    let mut fp = Fingerprint128::new();
    fp.fold_bytes(payload);
    fp.finish() as u64
}

/// Serialises one record (header + payload) into `out`.
fn encode_record(out: &mut Vec<u8>, key: u128, status: u16, body: &str) {
    let payload_len = PAYLOAD_HEADER + body.len();
    let start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // checksum placeholder
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&status.to_le_bytes());
    out.extend_from_slice(body.as_bytes());
    let check = checksum(&out[start + RECORD_HEADER..]);
    out[start + 4..start + RECORD_HEADER].copy_from_slice(&check.to_le_bytes());
}

/// Walks `data` (a full log file image) and returns the intact entries plus the byte
/// offset of the first unusable record — the recovery cut point.
fn scan(data: &[u8]) -> (Vec<RecoveredEntry>, u64, RecoveryStats) {
    let mut stats = RecoveryStats::default();
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        // Garbage or short header: nothing in this file can be trusted; reset it.
        if !data.is_empty() {
            stats.torn_tail_truncations += 1;
        }
        return (Vec::new(), 0, stats);
    }
    let mut entries = Vec::new();
    let mut offset = MAGIC.len();
    while offset < data.len() {
        let rest = &data[offset..];
        let Some(record) = decode_record(rest) else {
            stats.torn_tail_truncations += 1;
            break;
        };
        let (entry, consumed) = record;
        entries.push(entry);
        offset += consumed;
    }
    stats.recovered_entries = entries.len() as u64;
    (entries, offset as u64, stats)
}

/// Decodes one record from the front of `data`; `None` on any torn or corrupt shape.
fn decode_record(data: &[u8]) -> Option<(RecoveredEntry, usize)> {
    if data.len() < RECORD_HEADER {
        return None;
    }
    let payload_len = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
    if !(PAYLOAD_HEADER..=MAX_RECORD).contains(&payload_len) {
        return None;
    }
    let check = u64::from_le_bytes(data[4..RECORD_HEADER].try_into().ok()?);
    let payload = data.get(RECORD_HEADER..RECORD_HEADER + payload_len)?;
    if checksum(payload) != check {
        return None;
    }
    let key = u128::from_le_bytes(payload[..16].try_into().ok()?);
    let status = u16::from_le_bytes(payload[16..PAYLOAD_HEADER].try_into().ok()?);
    let body = String::from_utf8(payload[PAYLOAD_HEADER..].to_vec()).ok()?;
    Some((
        RecoveredEntry { key, status, body },
        RECORD_HEADER + payload_len,
    ))
}

impl ShardLog {
    /// Opens (creating if absent) the shard log at `path`, recovering every intact
    /// entry and truncating the file at the first torn or corrupt record.
    pub(crate) fn open(path: &Path) -> io::Result<(ShardLog, Vec<RecoveredEntry>, RecoveryStats)> {
        let data = match std::fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (entries, valid_end, stats) = scan(&data);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let bytes = if valid_end == 0 {
            // Fresh, reset, or garbage-headed file: start over with a clean header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            MAGIC.len() as u64
        } else {
            if (valid_end as usize) < data.len() {
                file.set_len(valid_end)?;
            }
            file.seek(SeekFrom::Start(valid_end))?;
            valid_end
        };
        Ok((
            ShardLog {
                file,
                path: path.to_path_buf(),
                bytes,
            },
            entries,
            stats,
        ))
    }

    /// Appends one record. Not fsynced — a crash may tear this record off the tail,
    /// which recovery detects and truncates.
    pub(crate) fn append(&mut self, key: u128, status: u16, body: &str) -> io::Result<()> {
        let mut record = Vec::with_capacity(RECORD_HEADER + PAYLOAD_HEADER + body.len());
        encode_record(&mut record, key, status, body);
        self.file.write_all(&record)?;
        self.bytes += record.len() as u64;
        Ok(())
    }

    /// Current log size in bytes (header + records, live and stale).
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Rewrites the log to exactly `entries` via a temporary file, fsync, and atomic
    /// rename — a crash leaves either the complete old log or the complete new one.
    pub(crate) fn compact<'e>(
        &mut self,
        entries: impl Iterator<Item = (u128, u16, &'e str)>,
    ) -> io::Result<()> {
        let tmp_path = self.path.with_extension("log.tmp");
        let mut image = Vec::from(&MAGIC[..]);
        for (key, status, body) in entries {
            encode_record(&mut image, key, status, body);
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&image)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // Best-effort directory fsync so the rename itself survives power loss; not
        // every filesystem supports syncing a directory handle, hence the tolerance.
        if let Some(dir) = self.path.parent() {
            if let Ok(handle) = File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        // The old handle points at the unlinked inode; reopen the renamed file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.bytes = image.len() as u64;
        Ok(())
    }

    /// Fsyncs the log (drain/shutdown path; appends are otherwise unsynced).
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// The canonical log file name of shard `index`.
pub(crate) fn shard_log_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:04}.log"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory unique to this test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "fcpn-persist-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn reopen(path: &Path) -> (Vec<RecoveredEntry>, RecoveryStats) {
        let (_, entries, stats) = ShardLog::open(path).expect("recovery never fails");
        (entries, stats)
    }

    #[test]
    fn round_trip_append_and_recover() {
        let dir = TempDir::new("roundtrip");
        let path = shard_log_path(dir.path(), 0);
        let (mut log, entries, stats) = ShardLog::open(&path).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats, RecoveryStats::default());
        log.append(42, 200, "{\"a\":1}").unwrap();
        log.append(u128::MAX, 422, "err").unwrap();
        log.flush().unwrap();
        drop(log);
        let (entries, stats) = reopen(&path);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, 42);
        assert_eq!(entries[0].status, 200);
        assert_eq!(entries[0].body, "{\"a\":1}");
        assert_eq!(entries[1].key, u128::MAX);
        assert_eq!(stats.recovered_entries, 2);
        assert_eq!(stats.torn_tail_truncations, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_entries_survive() {
        let dir = TempDir::new("torn");
        let path = shard_log_path(dir.path(), 0);
        let (mut log, _, _) = ShardLog::open(&path).unwrap();
        log.append(1, 200, "first").unwrap();
        log.append(2, 200, "second").unwrap();
        drop(log);
        // Tear the last record: chop a few bytes off the file tail (a crashed append).
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (entries, stats) = reopen(&path);
        assert_eq!(entries.len(), 1, "only the intact prefix survives");
        assert_eq!(entries[0].body, "first");
        assert_eq!(stats.torn_tail_truncations, 1);
        // The truncation is persistent: the next recovery sees a clean file.
        let (entries, stats) = reopen(&path);
        assert_eq!(entries.len(), 1);
        assert_eq!(stats.torn_tail_truncations, 0);
    }

    #[test]
    fn corrupted_checksum_cuts_the_log_at_the_bad_record() {
        let dir = TempDir::new("checksum");
        let path = shard_log_path(dir.path(), 0);
        let (mut log, _, _) = ShardLog::open(&path).unwrap();
        log.append(1, 200, "good").unwrap();
        log.append(2, 200, "bad").unwrap();
        log.append(3, 200, "after").unwrap();
        drop(log);
        // Flip one body byte of the middle record (bit rot / partial overwrite).
        let mut data = std::fs::read(&path).unwrap();
        let second_start = MAGIC.len() + RECORD_HEADER + PAYLOAD_HEADER + "good".len();
        data[second_start + RECORD_HEADER + PAYLOAD_HEADER] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (entries, stats) = reopen(&path);
        assert_eq!(
            entries.len(),
            1,
            "everything from the corrupt record on is cut"
        );
        assert_eq!(entries[0].body, "good");
        assert_eq!(stats.torn_tail_truncations, 1);
    }

    #[test]
    fn garbage_header_resets_to_a_working_empty_log() {
        let dir = TempDir::new("garbage");
        let path = shard_log_path(dir.path(), 0);
        std::fs::write(&path, b"this is not a shard log at all").unwrap();
        let (mut log, entries, stats) = ShardLog::open(&path).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats.torn_tail_truncations, 1);
        // The reset log is immediately usable.
        log.append(9, 200, "fresh").unwrap();
        drop(log);
        let (entries, _) = reopen(&path);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].body, "fresh");
    }

    #[test]
    fn empty_file_recovers_to_a_working_empty_log() {
        let dir = TempDir::new("empty");
        let path = shard_log_path(dir.path(), 0);
        std::fs::write(&path, b"").unwrap();
        let (mut log, entries, stats) = ShardLog::open(&path).unwrap();
        assert!(entries.is_empty());
        // A zero-byte file is indistinguishable from "never written": no truncation
        // event is charged.
        assert_eq!(stats, RecoveryStats::default());
        log.append(1, 200, "x").unwrap();
        drop(log);
        assert_eq!(reopen(&path).0.len(), 1);
    }

    #[test]
    fn oversized_length_prefix_is_treated_as_corruption() {
        let dir = TempDir::new("oversize");
        let path = shard_log_path(dir.path(), 0);
        let mut data = Vec::from(&MAGIC[..]);
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &data).unwrap();
        let (_, entries, stats) = ShardLog::open(&path).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats.torn_tail_truncations, 1);
    }

    #[test]
    fn compaction_drops_stale_records_and_survives_reopen() {
        let dir = TempDir::new("compact");
        let path = shard_log_path(dir.path(), 0);
        let (mut log, _, _) = ShardLog::open(&path).unwrap();
        for i in 0..100u128 {
            log.append(i, 200, "stale-then-live").unwrap();
        }
        let before = log.bytes();
        log.compact([(7u128, 200u16, "live")].into_iter()).unwrap();
        assert!(log.bytes() < before);
        // The compacted log stays appendable and recovers cleanly.
        log.append(8, 200, "appended-after-compact").unwrap();
        drop(log);
        let (entries, stats) = reopen(&path);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key, 7);
        assert_eq!(entries[1].key, 8);
        assert_eq!(stats.torn_tail_truncations, 0);
    }
}
