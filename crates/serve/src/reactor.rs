//! The event-driven front end: a single epoll thread driving non-blocking
//! per-connection state machines, feeding complete requests to a CPU worker pool.
//!
//! ## Why a reactor
//!
//! The threaded front end spends one OS thread per in-flight *connection*, so a few
//! hundred slow or idle clients exhaust the worker pool no matter how fast the
//! scheduling core is. Here one thread owns every socket: connections progress
//! through a small state machine (`Reading → Dispatched → Writing → Reading/closed`)
//! as bytes arrive, and only *complete* requests cross the bounded dispatch queue to
//! the workers. A slow-loris client therefore costs a few KiB of parser buffer and a
//! timer-wheel entry — never a thread — and 10k idle connections are just 10k slab
//! entries.
//!
//! ## Structure
//!
//! - `sys`: the only `unsafe` in the crate — minimal `extern "C"` bindings for
//!   `epoll_create1`/`epoll_ctl`/`epoll_wait`, `close(2)` and `setrlimit(2)`, in the
//!   same zero-dependency spirit as the daemon binary's `signal(2)` shim.
//! - Connection slab: `Vec<Option<Conn>>` + free list; the epoll token is the slot
//!   index, and a per-slot generation counter keeps completions for a dead
//!   connection from touching its slot's new tenant. Freed slots are not reused
//!   until the next poll iteration, so stale events in the same batch cannot alias.
//! - Timer wheel: 512 slots × 50 ms (a 25.6 s horizon — longer deadlines clamp to
//!   the horizon and re-schedule on expiry) with lazy deletion: entries are
//!   validated against the connection's current deadline when they fire.
//! - Wakeup: workers push finished responses onto a completion list and write one
//!   byte into a non-blocking socketpair the reactor polls, so responses start
//!   flowing at most one syscall after the handler returns.
//!
//! Interest masks follow the state machine (`EPOLLIN` while reading, `EPOLLOUT`
//! while a write is blocked, nothing while dispatched) — under level-triggered
//! epoll, anything else is a busy loop.

use crate::http::{self, HttpError, IncrementalParser, Request, Response};
use crate::server::{Admitted, Core};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw syscall shim. The crate denies `unsafe_code` everywhere else; this module is
/// the one sanctioned exception, kept to straight-line wrappers with no API surface
/// beyond what the reactor needs.
pub(crate) mod sys {
    #![allow(unsafe_code)]

    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    const RLIMIT_NOFILE: i32 = 7;

    /// `struct epoll_event`. The kernel packs this to 12 bytes on x86-64; other
    /// architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL on any kernel ≥ 2.6.9 but must be
            // non-null for portability.
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Waits up to `timeout_ms` and fills `events`; returns the ready count.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(rc as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.fd);
            }
        }
    }

    /// Best-effort raise of the soft `RLIMIT_NOFILE` toward `want` (capped by the
    /// hard limit). Returns the resulting soft limit, or `0` if it could not even be
    /// read — callers treat this as advisory.
    pub fn raise_nofile_limit(want: u64) -> u64 {
        let mut rlim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut rlim) } != 0 {
            return 0;
        }
        if rlim.cur >= want {
            return rlim.cur;
        }
        let target = want.min(rlim.max);
        let new = Rlimit {
            cur: target,
            max: rlim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
            target
        } else {
            rlim.cur
        }
    }
}

/// Best-effort raise of the process's open-file soft limit (the reactor's headline
/// number is connections, and every connection is an fd). Returns the resulting soft
/// limit.
pub fn raise_nofile_limit(want: u64) -> u64 {
    sys::raise_nofile_limit(want)
}

/// Epoll token for the listening socket.
const LISTENER: u64 = u64::MAX;
/// Epoll token for the worker-completion wakeup pipe.
const WAKEUP: u64 = u64::MAX - 1;
/// Epoll timeout; also the timer-wheel granularity.
const TICK_MS: u64 = 50;
/// Timer-wheel slot count (horizon = `WHEEL_SLOTS × TICK_MS` = 25.6 s).
const WHEEL_SLOTS: usize = 512;

/// A parsed request on its way to the worker pool.
struct Job {
    slot: usize,
    generation: u64,
    request: Request,
    /// Tenant bucket to release when the request finishes (`None` for probes).
    tenant: Option<String>,
}

/// A finished response on its way back to the reactor.
struct Completion {
    slot: usize,
    generation: u64,
    response: Response,
    wants_close: bool,
}

/// Bounded MPMC queue of parsed requests (reactor → workers).
#[derive(Debug)]
struct DispatchQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("slot", &self.slot).finish()
    }
}

impl DispatchQueue {
    fn new(capacity: usize) -> Self {
        DispatchQueue {
            jobs: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        match self.jobs.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking push; `Err` gives the job back when the queue is full (the
    /// caller sheds with `503`).
    // The large `Err` is the point: the rejected job is handed back whole so the
    // caller can release its tenant slot without cloning anything.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.lock();
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once shutdown is flagged.
    fn pop(&self, core: &Core) -> Option<Job> {
        let mut jobs = self.lock();
        loop {
            if core.shutting_down() {
                return None;
            }
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            jobs = match self.ready.wait(jobs) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn len(&self) -> usize {
        self.lock().len()
    }
}

/// State shared between the reactor thread, the workers and the handle.
#[derive(Debug)]
struct ReactorShared {
    core: Arc<Core>,
    queue: DispatchQueue,
    completions: Mutex<Vec<Completion>>,
    /// Write half of the wakeup pair; workers write one byte after pushing a
    /// completion. (`io::Write` is implemented for `&UnixStream`, so no lock is
    /// needed to write.)
    wake_tx: UnixStream,
    /// Deadline set by `drain`: the reactor exits once quiescent or past it.
    drain_deadline: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("slot", &self.slot)
            .finish()
    }
}

impl ReactorShared {
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    fn push_completion(&self, completion: Completion) {
        match self.completions.lock() {
            Ok(mut guard) => guard.push(completion),
            Err(poisoned) => poisoned.into_inner().push(completion),
        }
        self.wake();
    }

    fn take_completions(&self) -> Vec<Completion> {
        match self.completions.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }
}

/// A running reactor front end: the epoll thread plus its CPU worker pool.
#[derive(Debug)]
pub(crate) struct ReactorHandle {
    shared: Arc<ReactorShared>,
    reactor_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Spawns the reactor thread and worker pool over an already-bound listener.
    pub(crate) fn spawn(core: Arc<Core>, listener: TcpListener) -> io::Result<ReactorHandle> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        listener.set_nonblocking(true)?;
        let workers = core.config.workers.max(1);
        let shared = Arc::new(ReactorShared {
            queue: DispatchQueue::new(core.config.queue_capacity),
            completions: Mutex::new(Vec::new()),
            wake_tx,
            drain_deadline: Mutex::new(None),
            core,
        });

        let worker_threads = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fcpn-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let reactor_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fcpn-serve-reactor".into())
                .spawn(move || {
                    if let Err(err) = reactor_loop(&listener, &wake_rx, &shared) {
                        // An epoll setup/wait failure is unrecoverable for this front
                        // end; flag shutdown so workers exit instead of hanging.
                        shared.core.shutdown.store(true, Ordering::SeqCst);
                        shared.queue.ready.notify_all();
                        eprintln!("fcpn-serve reactor failed: {err}");
                    }
                })
                .expect("spawn reactor thread")
        };

        Ok(ReactorHandle {
            shared,
            reactor_thread: Some(reactor_thread),
            worker_threads,
        })
    }

    fn join_threads(&mut self) {
        if let Some(reactor) = self.reactor_thread.take() {
            let _ = reactor.join();
        }
        self.shared.queue.ready.notify_all();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the reactor stops (another thread must flip the shutdown flag).
    pub(crate) fn join(mut self) {
        self.join_threads();
    }

    /// Immediate stop: open connections are dropped, queued jobs discarded, workers
    /// finish their current request.
    pub(crate) fn shutdown(mut self) {
        self.shared.core.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        self.join_threads();
    }

    /// Graceful stop: refuse new connections, finish in-flight requests and their
    /// response writes (up to `drain_grace`), then stop.
    pub(crate) fn drain(mut self) {
        let grace = self.shared.core.config.drain_grace;
        match self.shared.drain_deadline.lock() {
            Ok(mut guard) => *guard = Some(Instant::now() + grace),
            Err(poisoned) => *poisoned.into_inner() = Some(Instant::now() + grace),
        }
        // `core.draining` was set by the caller (ServerHandle::drain).
        self.shared.core.draining.store(true, Ordering::SeqCst);
        self.shared.wake();
        // The reactor exits on its own once quiescent or past the deadline; workers
        // are then stopped.
        if let Some(reactor) = self.reactor_thread.take() {
            let _ = reactor.join();
        }
        self.shared.core.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.ready.notify_all();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
    }
}

/// CPU worker: pops complete requests, runs the handlers, pushes the response back
/// to the reactor.
fn worker_loop(shared: &ReactorShared) {
    let core = &shared.core;
    loop {
        let Some(job) = shared.queue.pop(core) else {
            return;
        };
        core.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let response = core.dispatch(&job.request, shared.queue.len());
        let elapsed_us = started.elapsed().as_micros();
        core.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(tenant) = &job.tenant {
            core.tenants.release(tenant);
        }
        core.metrics.count_response(response.status);
        let response = response.with_header("X-Fcpn-Elapsed-Us", &elapsed_us.to_string());
        shared.push_completion(Completion {
            slot: job.slot,
            generation: job.generation,
            response,
            wants_close: job.request.wants_close(),
        });
    }
}

/// What a connection is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    /// Waiting for (more of) a request; parser owns partial bytes.
    Reading,
    /// A complete request is with the worker pool; nothing to do until its
    /// completion arrives.
    Dispatched,
    /// A serialised response is partially written; waiting for `EPOLLOUT`.
    Writing,
}

/// Which deadline class is armed (decides the timeout counter and semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
enum DeadlineKind {
    /// Keep-alive connection with no partial request: idle timeout.
    Idle,
    /// Mid-request read (head or body): slow-loris bound.
    Read,
    /// Mid-response write: write-side slow-loris bound.
    Write,
}

/// One connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    parser: IncrementalParser,
    state: ConnState,
    generation: u64,
    /// Events currently registered with epoll for this fd.
    interest: u32,
    deadline: Option<Instant>,
    deadline_kind: DeadlineKind,
    /// When the first byte of the in-progress request arrived.
    request_started: Option<Instant>,
    write_buf: Vec<u8>,
    written: usize,
    close_after_write: bool,
    /// Requests completed on this connection (keep-alive budget).
    served: usize,
}

/// Hashed timer wheel: `WHEEL_SLOTS` buckets of `(conn_slot, generation)` entries at
/// `TICK_MS` granularity, with lazy deletion — entries are validated against the
/// connection's live deadline when their bucket comes up, and re-armed if the
/// deadline moved (keep-alive reuse) or lies past the horizon.
struct TimerWheel {
    buckets: Vec<Vec<(usize, u64)>>,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> Self {
        TimerWheel {
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_tick: now,
        }
    }

    fn schedule(&mut self, deadline: Instant, conn_slot: usize, generation: u64) {
        let delay = deadline.saturating_duration_since(self.last_tick);
        let ticks = (delay.as_millis() as u64 / TICK_MS + 1).min(WHEEL_SLOTS as u64 - 1) as usize;
        let bucket = (self.cursor + ticks) % WHEEL_SLOTS;
        self.buckets[bucket].push((conn_slot, generation));
    }

    /// Advances to `now`, collecting entries whose bucket has come up.
    fn advance(&mut self, now: Instant, due: &mut Vec<(usize, u64)>) {
        while now.saturating_duration_since(self.last_tick) >= Duration::from_millis(TICK_MS) {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            self.last_tick += Duration::from_millis(TICK_MS);
            due.append(&mut self.buckets[self.cursor]);
        }
    }
}

/// Everything the reactor loop owns (single-threaded; no locks in here).
struct Reactor<'a> {
    shared: &'a ReactorShared,
    epoll: sys::Epoll,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed during the current poll iteration; merged into `free` only at the
    /// end of it so a stale event in the same batch cannot touch a recycled slot.
    freed_this_iter: Vec<usize>,
    wheel: TimerWheel,
    next_generation: u64,
    open: usize,
    /// Pre-serialised shed response (the accept path must never allocate per
    /// rejection under a connection flood).
    overload_bytes: Vec<u8>,
}

fn reactor_loop(
    listener: &TcpListener,
    wake_rx: &UnixStream,
    shared: &ReactorShared,
) -> io::Result<()> {
    let epoll = sys::Epoll::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, LISTENER)?;
    epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, WAKEUP)?;
    let mut reactor = Reactor {
        shared,
        epoll,
        conns: Vec::new(),
        free: Vec::new(),
        freed_this_iter: Vec::new(),
        wheel: TimerWheel::new(Instant::now()),
        next_generation: 0,
        open: 0,
        overload_bytes: http::serialize_response(&Core::overload_response(), true),
    };
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
    let mut scratch = vec![0u8; 16 * 1024];
    let mut due: Vec<(usize, u64)> = Vec::new();

    loop {
        let core = &shared.core;
        if core.shutting_down() {
            break;
        }
        if core.is_draining() && reactor.drain_complete() {
            break;
        }
        let n = reactor.epoll.wait(&mut events, TICK_MS as i32)?;
        for event in &events[..n] {
            let (token, revents) = (event.data, event.events);
            match token {
                LISTENER => reactor.accept_ready(listener),
                WAKEUP => {
                    let mut rx = wake_rx;
                    while let Ok(n) = rx.read(&mut scratch) {
                        if n == 0 {
                            break;
                        }
                    }
                }
                slot => reactor.conn_event(slot as usize, revents, &mut scratch),
            }
        }
        // Completions are drained every iteration (not only on WAKEUP) so a wake
        // byte racing the poll can never strand a response until the next tick.
        for completion in shared.take_completions() {
            reactor.apply_completion(completion);
        }
        due.clear();
        reactor.wheel.advance(Instant::now(), &mut due);
        for &(slot, generation) in &due {
            reactor.timer_fired(slot, generation);
        }
        let freed: Vec<usize> = reactor.freed_this_iter.drain(..).collect();
        reactor.free.extend(freed);
    }

    // Teardown: drop every connection; epoll and listener close on drop.
    for conn in reactor.conns.iter_mut() {
        *conn = None;
    }
    Ok(())
}

impl Reactor<'_> {
    /// Drain is complete when no connection holds unfinished work and the worker
    /// pipeline is empty — or the grace deadline passed.
    fn drain_complete(&self) -> bool {
        let deadline_passed = match self.shared.drain_deadline.lock() {
            Ok(guard) => guard.is_some_and(|d| Instant::now() >= d),
            Err(poisoned) => poisoned.into_inner().is_some_and(|d| Instant::now() >= d),
        };
        if deadline_passed {
            return true;
        }
        if !self.shared.queue.lock().is_empty() {
            return false;
        }
        if self.shared.core.metrics.in_flight.load(Ordering::SeqCst) > 0 {
            return false;
        }
        // Completions may be parked between the worker and us.
        let completions_empty = match self.shared.completions.lock() {
            Ok(guard) => guard.is_empty(),
            Err(poisoned) => poisoned.into_inner().is_empty(),
        };
        if !completions_empty {
            return false;
        }
        // Half-read requests are abandoned by drain (the client never finished
        // sending them); only dispatched work and unfinished responses count.
        !self
            .conns
            .iter()
            .flatten()
            .any(|c| matches!(c.state, ConnState::Dispatched | ConnState::Writing))
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        let core = Arc::clone(&self.shared.core);
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EMFILE-class errors: back off a beat instead of spinning on a
                    // level-triggered listener event we cannot clear.
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            };
            core.metrics
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            if core.is_draining() || self.open >= core.config.max_connections {
                core.metrics
                    .rejected_saturated
                    .fetch_add(1, Ordering::Relaxed);
                core.metrics.count_response(503);
                // One opportunistic non-blocking write; a peer that cannot take ~150
                // bytes immediately just gets the close. Blocking here would let one
                // hostile peer stall every other connection.
                let _ = stream.set_nonblocking(true);
                let _ = (&stream).write(&self.overload_bytes);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.register(stream);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let core = Arc::clone(&self.shared.core);
        let generation = self.next_generation;
        self.next_generation += 1;
        let now = Instant::now();
        let deadline = now + core.config.idle_timeout;
        let conn = Conn {
            parser: IncrementalParser::new(core.config.http),
            state: ConnState::Reading,
            generation,
            interest: sys::EPOLLIN,
            deadline: Some(deadline),
            deadline_kind: DeadlineKind::Idle,
            request_started: None,
            write_buf: Vec::new(),
            written: 0,
            close_after_write: false,
            served: 0,
            stream,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let fd = self.conns[slot].as_ref().unwrap().stream.as_raw_fd();
        if self.epoll.add(fd, sys::EPOLLIN, slot as u64).is_err() {
            self.conns[slot] = None;
            self.free.push(slot);
            return;
        }
        self.wheel.schedule(deadline, slot, generation);
        self.open += 1;
        core.metrics
            .open_connections
            .store(self.open as u64, Ordering::Relaxed);
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.freed_this_iter.push(slot);
            self.open -= 1;
            self.shared
                .core
                .metrics
                .open_connections
                .store(self.open as u64, Ordering::Relaxed);
        }
    }

    fn conn_event(&mut self, slot: usize, revents: u32, scratch: &mut [u8]) {
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return; // stale event for an already-closed connection
        };
        if revents & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            // Error or full hang-up: the peer is gone whichever state we are in. A
            // dispatched request's completion is discarded by the generation check.
            self.close_conn(slot);
            return;
        }
        match conn.state {
            ConnState::Reading if revents & sys::EPOLLIN != 0 => self.read_ready(slot, scratch),
            ConnState::Writing if revents & sys::EPOLLOUT != 0 => {
                let finished = self.write_ready(slot);
                if finished {
                    // Keep-alive write finished: pipelined requests may already sit in
                    // the parser buffer (userspace — epoll will never report them).
                    self.process_parsed(slot);
                }
            }
            _ => {}
        }
    }

    fn read_ready(&mut self, slot: usize, scratch: &mut [u8]) {
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(conn) if conn.state == ConnState::Reading => conn,
                _ => return,
            };
            match (&conn.stream).read(scratch) {
                Ok(0) => {
                    // Peer closed. Mid-request this frees the slot immediately (the
                    // mid-body disconnect case); idle it is just the end of keep-alive.
                    self.close_conn(slot);
                    return;
                }
                Ok(n) => {
                    if conn.request_started.is_none() {
                        conn.request_started = Some(Instant::now());
                    }
                    conn.parser.feed(&scratch[..n]);
                    self.process_parsed(slot);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.refresh_read_deadline(slot);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
    }

    /// Re-arms the read-side deadline after parser progress: idle timeout while no
    /// partial request is buffered, the request-read (slow-loris) deadline otherwise.
    fn refresh_read_deadline(&mut self, slot: usize) {
        let config = &self.shared.core.config;
        let (idle_timeout, read_deadline) = (config.idle_timeout, config.request_read_deadline);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.state != ConnState::Reading {
            return;
        }
        let (deadline, kind) = if conn.parser.is_idle() {
            conn.request_started = None;
            (Instant::now() + idle_timeout, DeadlineKind::Idle)
        } else {
            let started = *conn.request_started.get_or_insert_with(Instant::now);
            (started + read_deadline, DeadlineKind::Read)
        };
        conn.deadline = Some(deadline);
        conn.deadline_kind = kind;
        let generation = conn.generation;
        self.wheel.schedule(deadline, slot, generation);
    }

    /// Drives the parser over buffered bytes: answers probes inline, runs admission,
    /// dispatches complete requests, rejects malformed ones. Loops so pipelined
    /// requests answered without blocking (probes, 429s) keep flowing.
    fn process_parsed(&mut self, slot: usize) {
        loop {
            let core = Arc::clone(&self.shared.core);
            let conn = match self.conns[slot].as_mut() {
                Some(conn) if conn.state == ConnState::Reading => conn,
                _ => return,
            };
            match conn.parser.poll() {
                Ok(None) => {
                    self.refresh_read_deadline(slot);
                    return;
                }
                Ok(Some(request)) => {
                    core.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                    conn.request_started = None;
                    let close_policy = request.wants_close()
                        || conn.served + 1 >= core.config.max_requests_per_connection
                        || core.shutting_down()
                        || core.is_draining();
                    if Core::is_probe(&request) {
                        // Probes are answered on the reactor thread itself: O(µs), no
                        // queue, cannot be starved by a full worker pool.
                        let response = core.dispatch(&request, self.shared.queue.len());
                        core.metrics.count_response(response.status);
                        if !self.start_write(slot, &response, close_policy) {
                            return;
                        }
                        continue;
                    }
                    match core.admit(&request) {
                        Admitted::Rejected(response) => {
                            core.metrics.count_response(response.status);
                            if !self.start_write(slot, &response, close_policy) {
                                return;
                            }
                            continue;
                        }
                        Admitted::Ok { tenant } => {
                            let conn = self.conns[slot].as_mut().unwrap();
                            let job = Job {
                                slot,
                                generation: conn.generation,
                                request,
                                tenant: Some(tenant),
                            };
                            match self.shared.queue.try_push(job) {
                                Ok(()) => {
                                    let conn = self.conns[slot].as_mut().unwrap();
                                    conn.state = ConnState::Dispatched;
                                    conn.deadline = None;
                                    self.set_interest(slot, 0);
                                    return;
                                }
                                Err(job) => {
                                    // Global overload: the dispatch queue is full.
                                    if let Some(tenant) = &job.tenant {
                                        core.tenants.release(tenant);
                                    }
                                    core.metrics
                                        .rejected_saturated
                                        .fetch_add(1, Ordering::Relaxed);
                                    core.metrics.count_response(503);
                                    let response = Core::overload_response();
                                    if !self.start_write(slot, &response, true) {
                                        return;
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                }
                Err(HttpError::Disconnected) => {
                    self.close_conn(slot);
                    return;
                }
                Err(HttpError::Malformed { status, message }) => {
                    let response = Response::error(status, &message);
                    core.metrics.count_response(response.status);
                    if !self.start_write(slot, &response, true) {
                        return;
                    }
                    // The parser is unusable after an error and the response carried
                    // `Connection: close`; if the write completed synchronously the
                    // connection was already closed by `finish_write`.
                    return;
                }
            }
        }
    }

    /// Serialises `response` and starts (opportunistically completing) the write.
    /// Returns `true` when the write finished synchronously on a keep-alive
    /// connection — i.e. the caller may continue parsing pipelined requests.
    fn start_write(&mut self, slot: usize, response: &Response, close: bool) -> bool {
        let write_deadline = self.shared.core.config.response_write_deadline;
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        conn.write_buf = http::serialize_response(response, close);
        conn.written = 0;
        conn.close_after_write = close;
        conn.served += 1;
        conn.state = ConnState::Writing;
        let deadline = Instant::now() + write_deadline;
        conn.deadline = Some(deadline);
        conn.deadline_kind = DeadlineKind::Write;
        let generation = conn.generation;
        self.wheel.schedule(deadline, slot, generation);
        self.write_ready(slot)
    }

    /// Pushes buffered response bytes until done or `EWOULDBLOCK`. Returns `true`
    /// when the response completed and the connection stays open for more requests.
    fn write_ready(&mut self, slot: usize) -> bool {
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(conn) if conn.state == ConnState::Writing => conn,
                _ => return false,
            };
            if conn.written == conn.write_buf.len() {
                return self.finish_write(slot);
            }
            let chunk_end = (conn.written + 64 * 1024).min(conn.write_buf.len());
            match (&conn.stream).write(&conn.write_buf[conn.written..chunk_end]) {
                Ok(0) => {
                    self.close_conn(slot);
                    return false;
                }
                Ok(n) => {
                    conn.written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(slot, sys::EPOLLOUT);
                    return false;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // EPIPE/ECONNRESET: the peer is gone.
                    self.close_conn(slot);
                    return false;
                }
            }
        }
    }

    /// The response is fully written: close, or return to reading (and immediately
    /// parse any pipelined bytes). Returns `true` when the connection stays open.
    fn finish_write(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        if conn.close_after_write {
            self.close_conn(slot);
            return false;
        }
        conn.write_buf = Vec::new();
        conn.written = 0;
        conn.state = ConnState::Reading;
        self.set_interest(slot, sys::EPOLLIN);
        self.refresh_read_deadline(slot);
        true
    }

    /// Adjusts the epoll registration to `events` if it changed.
    fn set_interest(&mut self, slot: usize, events: u32) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.interest == events {
            return;
        }
        conn.interest = events;
        let fd = conn.stream.as_raw_fd();
        if self.epoll.modify(fd, events, slot as u64).is_err() {
            self.close_conn(slot);
        }
    }

    /// A worker finished a request for (`slot`, `generation`): write the response if
    /// the connection is still the same one.
    fn apply_completion(&mut self, completion: Completion) {
        let core = &self.shared.core;
        let close = {
            let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) else {
                return; // connection died while the request was in flight
            };
            if conn.generation != completion.generation || conn.state != ConnState::Dispatched {
                return;
            }
            completion.wants_close
                || conn.served + 1 >= core.config.max_requests_per_connection
                || core.shutting_down()
                || core.is_draining()
        };
        // Leave Dispatched via Writing; if the write completes synchronously on a
        // keep-alive connection, drain any pipelined requests that queued up.
        if let Some(conn) = self.conns[completion.slot].as_mut() {
            conn.state = ConnState::Reading;
        }
        if self.start_write(completion.slot, &completion.response, close) {
            self.process_parsed(completion.slot);
        }
    }

    /// A timer-wheel bucket fired for (`slot`, `generation`): enforce the deadline
    /// if it is really due, otherwise re-arm (lazy deletion).
    fn timer_fired(&mut self, slot: usize, generation: u64) {
        let metrics = &self.shared.core.metrics;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.generation != generation {
            return;
        }
        let Some(deadline) = conn.deadline else {
            return; // dispatched: no socket-side deadline armed
        };
        if Instant::now() < deadline {
            // The deadline moved (keep-alive reuse) or lies past the wheel horizon.
            self.wheel.schedule(deadline, slot, generation);
            return;
        }
        match conn.deadline_kind {
            DeadlineKind::Idle => {
                metrics.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            DeadlineKind::Read | DeadlineKind::Write => {
                metrics.deadline_disconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.close_conn(slot);
    }
}
