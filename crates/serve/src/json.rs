//! A minimal JSON value tree with a writer and a recursive-descent parser.
//!
//! The workspace is offline (no `serde`), so the daemon renders its responses and the
//! benchmark harness validates its baselines through this hand-rolled module. The writer
//! emits compact, deterministically ordered JSON (object keys appear in insertion
//! order); the parser accepts standard JSON with a nesting-depth limit so a hostile
//! request can never blow the stack.
//!
//! # Example
//!
//! ```
//! use fcpn_serve::json::{parse, Json};
//!
//! let body = Json::obj([
//!     ("ok", Json::from(true)),
//!     ("states", Json::from(42u64)),
//! ])
//! .render();
//! assert_eq!(body, r#"{"ok":true,"states":42}"#);
//! let back = parse(&body).unwrap();
//! assert_eq!(back.get("states").and_then(Json::as_u64), Some(42));
//! ```

use std::fmt;

/// A JSON value: the writer's input and the parser's output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part (emitted unquoted, never in exponent form).
    Int(i128),
    /// A floating-point number (emitted with up to 6 significant decimals).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (insertion order on build, source order on
    /// parse).
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks a key up in an object (first occurrence); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer (or an integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            Json::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements if the value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Fixed notation with trailing zeros trimmed: stable, exponent-free
                    // and precise enough for latency/speedup reporting.
                    let mut s = format!("{v:.6}");
                    while s.ends_with('0') {
                        s.pop();
                    }
                    if s.ends_with('.') {
                        s.push('0');
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document (one value, optionally surrounded by whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset for any syntax error, trailing garbage,
/// or nesting deeper than 64 levels.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if *pos == start || text == "-" {
        return Err(err(start, "invalid number"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<i128>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not reassembled; lone surrogates map to the
                        // replacement character (the daemon never emits them).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = Json::obj([
            (
                "a",
                Json::arr([Json::from(1u64), Json::Null, Json::from("x")]),
            ),
            ("b", Json::obj([("nested", Json::from(true))])),
            ("f", Json::from(1.5f64)),
            ("neg", Json::from(-3i64)),
        ]);
        let text = value.render();
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let value = Json::from("a\"b\\c\nd\te\u{1}");
        let text = value.render();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "01x", "\"abc", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn float_rendering_is_stable() {
        assert_eq!(Json::from(0.5f64).render(), "0.5");
        assert_eq!(Json::from(3.0f64).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }
}
