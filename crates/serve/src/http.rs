//! A minimal HTTP/1.1 layer: request parsing with hard limits, response writing.
//!
//! The daemon speaks just enough HTTP for its POST/GET endpoints: request line,
//! headers, `Content-Length` bodies, percent-encoded query strings and keep-alive.
//! Everything is bounded — head size, header count, body size, and (via the `deadline`
//! handed to [`read_request`]) total wall-clock per request read — so a hostile peer
//! can exhaust neither memory nor a worker's time: the per-`read` socket timeout alone
//! would not stop a slow-loris client dripping one byte per interval, but the deadline
//! is checked after every read, so a request that has not arrived in full by then is
//! dropped. No chunked transfer encoding: requests carrying `Transfer-Encoding` are
//! rejected with `411 Length Required` semantics (the daemon's clients always know
//! their body length up front).

use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

/// Hard limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum header count.
    pub max_headers: usize,
    /// Maximum `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header (name matched case-insensitively against the stored
    /// lower-case form).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to be closed after this response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed (or timed out) before sending a complete request; nothing to
    /// answer.
    Disconnected,
    /// The request was syntactically invalid or exceeded a limit; the server should
    /// answer with this status and close.
    Malformed {
        /// Suggested response status (400, 413, …).
        status: u16,
        /// Human-readable reason, echoed in the error body.
        message: String,
    },
}

impl HttpError {
    fn bad(message: impl Into<String>) -> Self {
        HttpError::Malformed {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed before sending any byte (the normal end of a
/// keep-alive connection). `deadline`, when given, bounds the **total** wall-clock
/// spent reading this request (checked after every read): a slow-loris peer dripping
/// bytes under the socket timeout still loses its worker at the deadline. The
/// keep-alive idle wait (blocking for the first byte) is bounded by the socket read
/// timeout, not the deadline.
///
/// # Errors
///
/// [`HttpError::Disconnected`] on mid-request EOF, socket timeout or a blown deadline;
/// [`HttpError::Malformed`] (with a suggested status) on syntax errors or exceeded
/// limits.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
    deadline: Option<Instant>,
) -> Result<Option<Request>, HttpError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, limits, deadline, &mut head_bytes)? {
        None => return Ok(None),
        Some(line) if line.is_empty() => {
            // Tolerate a stray CRLF between pipelined requests.
            match read_line(reader, limits, deadline, &mut head_bytes)? {
                None => return Ok(None),
                Some(line) => line,
            }
        }
        Some(line) => line,
    };

    let mut header_lines: Vec<String> = Vec::new();
    loop {
        let line = match read_line(reader, limits, deadline, &mut head_bytes)? {
            None => return Err(HttpError::Disconnected),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        // The head-byte budget above bounds memory; the header-count limit is
        // enforced when the head is assembled.
        header_lines.push(line);
    }

    let (mut request, content_length) = assemble_head(
        &request_line,
        header_lines.iter().map(String::as_str),
        limits,
    )?;
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        // Chunked reads with a deadline check between them, so a body dripped under
        // the socket timeout still cannot hold the worker past the deadline.
        let mut filled = 0usize;
        while filled < content_length {
            if deadline.is_some_and(|d| Instant::now() > d) {
                return Err(HttpError::Disconnected);
            }
            let end = (filled + 8192).min(content_length);
            reader
                .read_exact(&mut body[filled..end])
                .map_err(|_| HttpError::Disconnected)?;
            filled = end;
        }
    }

    request.body = body;
    Ok(Some(request))
}

/// Parses a complete request head (request line + header lines, line terminators
/// already stripped) into a body-less [`Request`] plus the declared `Content-Length`.
///
/// Both front ends go through this: the blocking reader collects lines one blocking
/// `read` at a time, the reactor's [`IncrementalParser`] splits a buffered head — but
/// every status code and error message a client can observe comes from this one
/// function, so the two paths stay bit-identical.
pub(crate) fn assemble_head<'a>(
    request_line: &str,
    header_lines: impl Iterator<Item = &'a str>,
    limits: &HttpLimits,
) -> Result<(Request, usize), HttpError> {
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(format!("unsupported version {version}")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path =
        percent_decode(raw_path, false).ok_or_else(|| HttpError::bad("bad path encoding"))?;
    let query = match raw_query {
        None => Vec::new(),
        Some(q) => parse_query(q).ok_or_else(|| HttpError::bad("bad query encoding"))?,
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in header_lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::Malformed {
                status: 431,
                message: format!("more than {} headers", limits.max_headers),
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad("header line without `:`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed {
            status: 411,
            message: "chunked bodies are not supported; send Content-Length".into(),
        });
    }
    // RFC 7230: conflicting Content-Length values must be rejected, not resolved —
    // behind a proxy that honours a different occurrence this is a request-smuggling
    // desync.
    let mut content_lengths = headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str());
    let content_length = match content_lengths.next() {
        None => 0usize,
        Some(first) => {
            if content_lengths.any(|other| other != first) {
                return Err(HttpError::bad("conflicting Content-Length headers"));
            }
            // RFC 9110: DIGIT-only — `parse` alone would accept a `+` prefix, another
            // front-proxy disagreement to refuse outright.
            if first.is_empty() || !first.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::bad("invalid Content-Length"));
            }
            first
                .parse::<usize>()
                .map_err(|_| HttpError::bad("invalid Content-Length"))?
        }
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::Malformed {
            status: 413,
            message: format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                limits.max_body_bytes
            ),
        });
    }

    Ok((
        Request {
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        content_length,
    ))
}

/// Incremental HTTP/1.1 request parser for the non-blocking reactor path.
///
/// The reactor feeds whatever bytes `read(2)` produced — a byte, a half request, three
/// pipelined requests — and polls for complete requests. Parsing state survives across
/// feeds, so a head split at any byte boundary parses identically to one delivered
/// whole. Limits are enforced *mid-stream*: a head that exceeds `max_head_bytes`
/// before its terminator arrives is rejected without buffering the rest, which is the
/// property that makes 10k slow-loris clients cost kilobytes instead of threads.
#[derive(Debug)]
pub struct IncrementalParser {
    limits: HttpLimits,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for the head terminator (scan-resume memo).
    scanned: usize,
    state: ParseState,
}

#[derive(Debug)]
enum ParseState {
    Head,
    Body {
        request: Box<Request>,
        content_length: usize,
    },
}

impl IncrementalParser {
    /// A fresh parser enforcing `limits`.
    pub fn new(limits: HttpLimits) -> Self {
        IncrementalParser {
            limits,
            buf: Vec::new(),
            scanned: 0,
            state: ParseState::Head,
        }
    }

    /// Appends bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the parser holds no partial request (nothing buffered, waiting for a
    /// request line). Distinguishes an *idle* keep-alive connection from one that went
    /// quiet mid-request, which the reactor maps to different deadlines and counters.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::Head) && self.buf.is_empty()
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// `Ok(None)` means "need more bytes". After `Ok(Some(_))`, any pipelined
    /// remainder stays buffered — poll again before sleeping on the socket.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] exactly as the blocking reader would classify the same
    /// request (the head is assembled by the same code). The parser is unusable after
    /// an error; the connection must be closed.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if let ParseState::Body { content_length, .. } = &self.state {
            let content_length = *content_length;
            if self.buf.len() < content_length {
                return Ok(None);
            }
            let state = std::mem::replace(&mut self.state, ParseState::Head);
            let ParseState::Body { mut request, .. } = state else {
                unreachable!()
            };
            request.body = self.buf.drain(..content_length).collect();
            self.scanned = 0;
            return Ok(Some(*request));
        }

        // Tolerate stray blank lines between pipelined requests (the blocking path's
        // stray-CRLF leniency, generalised).
        loop {
            if self.buf.starts_with(b"\r\n") {
                self.buf.drain(..2);
            } else if self.buf.first() == Some(&b'\n') {
                self.buf.drain(..1);
            } else {
                break;
            }
            self.scanned = 0;
        }

        let Some(head_end) = self.find_head_terminator() else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::Malformed {
                    status: 431,
                    message: format!("request head exceeds {} bytes", self.limits.max_head_bytes),
                });
            }
            return Ok(None);
        };
        if head_end > self.limits.max_head_bytes {
            return Err(HttpError::Malformed {
                status: 431,
                message: format!("request head exceeds {} bytes", self.limits.max_head_bytes),
            });
        }

        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::bad("non-UTF-8 request head"))?;
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or("");
        // The only empty line in `head` is the terminator itself (the scan stops at
        // the first blank line), so filtering it out cannot drop a real header.
        let (request, content_length) =
            assemble_head(request_line, lines.filter(|l| !l.is_empty()), &self.limits)?;
        self.buf.drain(..head_end);
        self.scanned = 0;
        if content_length == 0 {
            return Ok(Some(request));
        }
        self.state = ParseState::Body {
            request: Box::new(request),
            content_length,
        };
        self.poll()
    }

    /// Finds the byte offset one past the blank line ending the head (`\r\n\r\n` or
    /// `\n\n`, mixed endings tolerated), resuming from the last scan position.
    fn find_head_terminator(&mut self) -> Option<usize> {
        // A terminator may straddle the previous feed boundary by up to 2 bytes.
        let start = self.scanned.saturating_sub(2);
        for i in start..self.buf.len() {
            if self.buf[i] != b'\n' {
                continue;
            }
            match self.buf.get(i + 1) {
                Some(&b'\n') => return Some(i + 2),
                Some(&b'\r') if self.buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        self.scanned = self.buf.len();
        None
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing the head-byte budget and the
/// per-request deadline. `Ok(None)` only on EOF before the first byte of the line.
fn read_line(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
    deadline: Option<Instant>,
    head_bytes: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Disconnected);
            }
            Ok(_) => {
                *head_bytes += 1;
                if deadline.is_some_and(|d| Instant::now() > d) {
                    return Err(HttpError::Disconnected);
                }
                if *head_bytes > limits.max_head_bytes {
                    return Err(HttpError::Malformed {
                        status: 431,
                        message: format!("request head exceeds {} bytes", limits.max_head_bytes),
                    });
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return match String::from_utf8(line) {
                        Ok(s) => Ok(Some(s)),
                        Err(_) => Err(HttpError::bad("non-UTF-8 request head")),
                    };
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Timeout or reset mid-head: the connection is unusable either way.
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
}

/// Splits and percent-decodes `a=b&c=d`; `None` on invalid encoding.
fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in raw.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Some(out)
}

/// Decodes `%XX` escapes (strict two-hex-digit form) and, only when
/// `plus_as_space` (the `application/x-www-form-urlencoded` query convention — a `+`
/// in a *path* is a literal plus), `+`-as-space. `None` on truncated/invalid escapes
/// or non-UTF-8 results.
fn percent_decode(raw: &str, plus_as_space: bool) -> Option<String> {
    if !(raw.contains('%') || plus_as_space && raw.contains('+')) {
        return Some(raw.to_string());
    }
    let bytes = raw.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                // `from_str_radix` would accept a sign prefix; require hex digits.
                if !hex.iter().all(u8::is_ascii_hexdigit) {
                    return None;
                }
                let hex = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response ready to be serialised.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. the cache disposition.
    pub extra_headers: Vec<(String, String)>,
    /// The body, behind an [`Arc`] so cache hits share it instead of copying it.
    pub body: Arc<String>,
}

impl Response {
    /// A JSON response from an owned body.
    pub fn json(status: u16, body: String) -> Self {
        Self::json_shared(status, Arc::new(body))
    }

    /// A JSON response from an already-shared body (the cache-hit path: no copy).
    pub fn json_shared(status: u16, body: Arc<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            crate::json::Json::obj([("error", crate::json::Json::from(message))]).render(),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Builds the response head exactly as the blocking writer emits it — the reactor
/// serialises through this same function, which is what keeps the two front ends'
/// wire bytes identical.
pub(crate) fn response_head(response: &Response, close: bool) -> String {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    head
}

/// Serialises a whole response (head + body) into one buffer for non-blocking writes.
pub(crate) fn serialize_response(response: &Response, close: bool) -> Vec<u8> {
    let head = response_head(response, close);
    let mut out = Vec::with_capacity(head.len() + response.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
    out
}

/// Serialises `response` onto `stream` (HTTP/1.1, explicit `Content-Length`,
/// `Connection: close` when `close`).
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(stream: &mut impl Write, response: &Response, close: bool) -> io::Result<()> {
    write_response_deadline(stream, response, close, None)
}

/// [`write_response`] with a total wall-clock bound on the write.
///
/// The per-`write` socket timeout alone does not bound the whole response: a peer
/// draining its receive window one byte at a time keeps every individual write under
/// the timeout while holding the worker indefinitely (the write-side slow-loris). The
/// body is therefore written in bounded chunks with the deadline checked between them;
/// a blown deadline aborts with [`io::ErrorKind::TimedOut`] and the caller drops the
/// connection.
///
/// # Errors
///
/// Propagates socket write errors; [`io::ErrorKind::TimedOut`] when `deadline` passes
/// before the response is fully written.
pub fn write_response_deadline(
    stream: &mut impl Write,
    response: &Response,
    close: bool,
    deadline: Option<Instant>,
) -> io::Result<()> {
    let head = response_head(response, close);
    stream.write_all(head.as_bytes())?;
    let body = response.body.as_bytes();
    let mut written = 0usize;
    while written < body.len() {
        if deadline.is_some_and(|d| Instant::now() > d) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "response write deadline exceeded",
            ));
        }
        let end = (written + 8192).min(body.len());
        stream.write_all(&body[written..end])?;
        written = end;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(input: &str) -> Result<Option<Request>, HttpError> {
        read_request(
            &mut BufReader::new(input.as_bytes()),
            &HttpLimits::default(),
            None,
        )
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_str(
            "POST /schedule?threads=2&cache=0 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/schedule");
        assert_eq!(req.query_param("threads"), Some("2"));
        assert_eq!(req.query_param("cache"), Some("0"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn percent_decoding_reaches_query_values() {
        let req = parse_str("GET /x?a=b%20c&d=e+f HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("a"), Some("b c"));
        assert_eq!(req.query_param("d"), Some("e f"));
    }

    #[test]
    fn plus_in_path_is_literal_and_bad_escapes_are_rejected() {
        // `+` is a space only in form-encoded query strings, never in paths.
        let req = parse_str("GET /a+b HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path, "/a+b");
        // `from_str_radix` alone would accept the sign prefix in `%+a`.
        for target in ["/x%+a", "/x%4", "/x%zz"] {
            let err = parse_str(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap_err();
            assert!(
                matches!(err, HttpError::Malformed { status: 400, .. }),
                "{target}"
            );
        }
    }

    #[test]
    fn conflicting_content_length_headers_are_rejected() {
        // Resolving the conflict either way is a request-smuggling desync behind a
        // proxy that resolves it the other way.
        let err =
            parse_str("POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap_err();
        assert!(matches!(err, HttpError::Malformed { status: 400, .. }));
        // Repeated but agreeing values are harmless.
        let req =
            parse_str("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap()
                .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn eof_before_request_is_none() {
        assert!(parse_str("").unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_413() {
        let limits = HttpLimits {
            max_body_bytes: 4,
            ..HttpLimits::default()
        };
        let err = read_request(
            &mut BufReader::new(&b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789"[..]),
            &limits,
            None,
        )
        .unwrap_err();
        match err {
            HttpError::Malformed { status, .. } => assert_eq!(status, 413),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_disconnected() {
        let err = parse_str("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, HttpError::Disconnected));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        assert!(matches!(
            parse_str("NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed { .. })
        ));
    }

    #[test]
    fn expired_write_deadline_aborts_with_timed_out() {
        let mut out = Vec::new();
        let long_body = "x".repeat(64 * 1024);
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let err = write_response_deadline(
            &mut out,
            &Response::json(200, long_body),
            true,
            Some(expired),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn incremental_parser_handles_any_split_boundary() {
        // One POST with query, headers and body, split at every byte boundary: the
        // parse must be identical no matter where the reads land.
        let wire =
            b"POST /schedule?threads=2 HTTP/1.1\r\nHost: x\r\nX-Fcpn-Tenant: acme\r\nContent-Length: 5\r\n\r\nhello";
        for split in 0..=wire.len() {
            let mut parser = IncrementalParser::new(HttpLimits::default());
            parser.feed(&wire[..split]);
            let first = parser.poll().unwrap();
            parser.feed(&wire[split..]);
            let req = match first {
                Some(req) => req,
                None => parser
                    .poll()
                    .unwrap()
                    .unwrap_or_else(|| panic!("no request after full feed (split at {split})")),
            };
            assert_eq!(req.method, "POST", "split {split}");
            assert_eq!(req.path, "/schedule");
            assert_eq!(req.query_param("threads"), Some("2"));
            assert_eq!(req.header("x-fcpn-tenant"), Some("acme"));
            assert_eq!(req.body, b"hello");
            assert!(parser.is_idle(), "split {split}");
        }
    }

    #[test]
    fn incremental_parser_drains_pipelined_requests_from_one_feed() {
        let mut parser = IncrementalParser::new(HttpLimits::default());
        parser.feed(
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /metrics HTTP/1.1\r\n\r\n",
        );
        let a = parser.poll().unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("GET", "/healthz"));
        let b = parser.poll().unwrap().unwrap();
        assert_eq!(b.path, "/x");
        assert_eq!(b.body, b"abc");
        let c = parser.poll().unwrap().unwrap();
        assert_eq!(c.path, "/metrics");
        assert!(parser.poll().unwrap().is_none());
        assert!(parser.is_idle());
    }

    #[test]
    fn incremental_parser_rejects_oversized_head_mid_stream() {
        // The head never terminates; the parser must reject as soon as the budget is
        // exceeded rather than buffering the drip-feed forever.
        let limits = HttpLimits {
            max_head_bytes: 64,
            ..HttpLimits::default()
        };
        let mut parser = IncrementalParser::new(limits);
        parser.feed(b"GET /");
        let mut rejected = None;
        for chunk in 0..100 {
            parser.feed(b"aaaaaaaa");
            match parser.poll() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("unterminated head parsed"),
                Err(e) => {
                    rejected = Some((chunk, e));
                    break;
                }
            }
        }
        let (chunk, err) = rejected.expect("oversized head never rejected");
        match err {
            HttpError::Malformed { status, .. } => assert_eq!(status, 431),
            other => panic!("unexpected {other:?}"),
        }
        // Rejection happened as soon as the budget blew, not at some later horizon.
        assert!(
            parser.buffered() <= 64 + 8 + 5,
            "rejected only at chunk {chunk}"
        );
    }

    #[test]
    fn incremental_parser_matches_blocking_reader_on_errors() {
        // Same malformed inputs, same statuses and messages on both paths.
        for wire in [
            "NONSENSE\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 5\r\n\r\nhello",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello",
            "GET /x%zz HTTP/1.1\r\n\r\n",
        ] {
            let blocking = parse_str(wire).unwrap_err();
            let mut parser = IncrementalParser::new(HttpLimits::default());
            parser.feed(wire.as_bytes());
            let incremental = parser.poll().unwrap_err();
            match (blocking, incremental) {
                (
                    HttpError::Malformed {
                        status: sa,
                        message: ma,
                    },
                    HttpError::Malformed {
                        status: sb,
                        message: mb,
                    },
                ) => {
                    assert_eq!(sa, sb, "{wire:?}");
                    assert_eq!(ma, mb, "{wire:?}");
                }
                other => panic!("mismatched classification for {wire:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_parser_tolerates_blank_lines_between_requests() {
        let mut parser = IncrementalParser::new(HttpLimits::default());
        parser.feed(b"GET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(parser.poll().unwrap().unwrap().path, "/a");
        assert_eq!(parser.poll().unwrap().unwrap().path, "/b");
        assert!(parser.poll().unwrap().is_none());
    }

    #[test]
    fn response_serialisation_includes_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
