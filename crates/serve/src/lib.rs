//! # fcpn-serve — a concurrent scheduler daemon for Free-Choice Petri Nets
//!
//! The service layer of the reproduction of *Synthesis of Embedded Software Using
//! Free-Choice Petri Nets* (DAC 1999): a long-running daemon that serves synthesis
//! requests over HTTP/1.1 on a plain [`std::net::TcpListener`] — the workspace is
//! offline, so the protocol layer, the JSON layer and the load generator are all
//! hand-rolled, following the `crates/shims` precedent of zero external dependencies.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Body | Answer |
//! |---|---|---|---|
//! | `/schedule` | POST | net (text format) | quasi-static schedule or diagnosis |
//! | `/analyze` | POST | net (text format) | reachability / deadlock / liveness / boundedness |
//! | `/codegen` | POST | net (text format) | synthesised C (or Rust) + code metrics |
//! | `/healthz` | GET | — | liveness probe |
//! | `/metrics` | GET | — | request/cache/queue counters |
//!
//! Per-request options ride in the query string (`?threads=2&max_markings=50000&…`),
//! clamped against server-side caps and mapped onto the engine's
//! [`ExploreOptions`](fcpn_petri::statespace::ExploreOptions) /
//! [`QssOptions`](fcpn_qss::QssOptions) knobs. Responses are deterministic JSON, which
//! makes them cacheable whole: a mutex-sharded cache keyed by the 128-bit
//! [`net_fingerprint`](fcpn_petri::net_fingerprint) (folded with endpoint + options)
//! serves repeat queries without touching the scheduler. Saturation is explicit — past
//! the bounded accept queue the daemon answers `503` immediately instead of stacking
//! latency.
//!
//! ## Quick start
//!
//! ```
//! use fcpn_serve::{Client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let handle = Server::spawn(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })?;
//! let net = fcpn_petri::io::to_text(&fcpn_petri::gallery::figure4());
//! let mut client = Client::connect(&handle.addr().to_string(), Duration::from_secs(5))?;
//! let response = client.request("POST", "/schedule", net.as_bytes())?;
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("\"schedulable\":true"));
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The `fcpn-served` binary (in the workspace root) wires this up as a standalone
//! process; `fcpn-bench`'s `serve_load` example replays gallery/ATM nets against it and
//! reports latency quantiles and cache hit rate.

// `deny` instead of `forbid`: the epoll reactor's syscall shim (`reactor::sys`) is the
// one place allowed to opt back in, with the same minimal-`extern "C"` discipline the
// daemon binary already uses for `signal(2)`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod handlers;
pub mod http;
pub mod json;
pub mod load;
mod metrics;
pub mod persist;
#[cfg(target_os = "linux")]
pub mod reactor;
mod server;
pub mod tenant;

pub use cache::{CachedResponse, ResultCache};
pub use handlers::{schedule_response_body, HandlerCtx, MemGovernor, RequestLimits};
pub use http::{HttpLimits, IncrementalParser, Request, Response};
pub use load::{Backoff, Client, ClientResponse, FanoutReport, FanoutSpec, LoadReport, LoadSpec};
pub use metrics::{Metrics, RuntimeStats};
pub use persist::RecoveryStats;
pub use server::{Server, ServerConfig, ServerHandle};
pub use tenant::{Admission, TenantGovernor, TenantPolicy};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerConfig>();
        assert_send_sync::<ResultCache>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<LoadSpec>();
    }
}
