//! The daemon's API endpoints: `/schedule`, `/analyze`, `/codegen`, `/synthesize`.
//!
//! Every POST endpoint accepts its input in a line-oriented text format as the request
//! body — a net in the `fcpn_petri::io::text` format for `/schedule`, `/analyze` and
//! `/codegen`; a labelled transition system in the `fcpn_petri::synthesis::Lts` format
//! for `/synthesize` — plus per-request options as query parameters, and answers
//! deterministic JSON: the body is a pure function of `(endpoint, input, options)`,
//! which is what makes whole responses cacheable by fingerprint and lets tests assert
//! bit-identical agreement with direct library calls. Volatile facts (cache
//! disposition, elapsed time) travel in `X-Fcpn-*` response headers, never in the body.
//!
//! ## Guards
//!
//! Per-request work is bounded three ways, so a hostile or merely enormous net cannot
//! pin a worker:
//!
//! * **state budgets** — `max_markings`, `max_tokens_per_place` and `max_nodes` are
//!   clamped to server-configured caps and passed into
//!   [`ExploreOptions`]/[`BoundednessOptions`]; truncated analyses answer honestly with
//!   `"unknown"` verdicts rather than running unbounded;
//! * **allocation budgets** — `max_allocations` is clamped and passed into
//!   [`AllocationOptions`]; the scheduler's typed `TooManyAllocations` error becomes a
//!   `422` instead of an exponential sweep;
//! * **deadlines** — `deadline_ms` (clamped to a cap) arms a
//!   [`CancelToken`] that is threaded *into* every engine
//!   stage (the exploration loops, the allocation sweep) and additionally checked
//!   between pipeline stages (the four `/analyze` checks; `/codegen`'s schedule →
//!   synthesize → emit chain). A blown deadline answers `503` — `"deadline exceeded"`
//!   when caught between stages, a cancellation notice when the engine itself bailed
//!   out mid-stage (counted in the `cancelled_in_stage` metric). The cooperative
//!   polling is counter-gated (every few hundred iterations), so a worker abandons a
//!   runaway sweep within milliseconds of its deadline instead of running the stage to
//!   completion.

use crate::cache::{CachedResponse, ResultCache};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use fcpn_codegen::{
    emit_c, emit_rust, synthesize, CEmitOptions, CodeMetrics, RustEmitOptions, SynthesisOptions,
};
use fcpn_petri::analysis::{
    check_liveness_in, find_deadlock_in, try_check_boundedness_with, Boundedness,
    BoundednessOptions, DeadlockReport, LivenessReport, ReachabilityOptions,
};
use fcpn_petri::statespace::ExploreOptions;
use fcpn_petri::synthesis as net_synthesis;
use fcpn_petri::synthesis::{Lts, SynthesisError};
use fcpn_petri::{
    io::parse_net, net_fingerprint, CancelToken, Fingerprint128, Interrupt, MemoryBudget, PetriNet,
    ResourceExhausted,
};
use fcpn_qss::{
    quasi_static_schedule, AllocationOptions, ComponentFailure, QssError, QssOptions, QssOutcome,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server-side caps that per-request options are clamped against.
#[derive(Debug, Clone, Copy)]
pub struct RequestLimits {
    /// Largest per-request worker thread count (`threads` query parameter).
    pub max_threads: usize,
    /// Cap on `max_markings` for reachability-based analyses.
    pub max_markings: usize,
    /// Cap on `max_tokens_per_place`.
    pub max_tokens_per_place: u64,
    /// Cap on the coverability search's `max_nodes`.
    pub max_coverability_nodes: usize,
    /// Cap on `max_allocations` for the scheduling sweep.
    pub max_allocations: u128,
    /// Largest honoured `deadline_ms`.
    pub max_deadline_ms: u64,
    /// Deadline applied when the request does not name one.
    pub default_deadline_ms: u64,
    /// Cap on the `memory_budget_bytes` query parameter: the most engine-allocation
    /// bytes any single request may budget for.
    pub max_memory_budget_bytes: u64,
    /// Byte budget applied when the request does not name one. `None` (the default)
    /// runs unbudgeted requests with unlimited engine memory; the server arms this
    /// when a process-wide `--mem-budget` is configured, so every request is
    /// accountable to the governor.
    pub default_memory_budget_bytes: Option<u64>,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits {
            max_threads: 4,
            max_markings: 200_000,
            max_tokens_per_place: 1024,
            max_coverability_nodes: 200_000,
            // One sweep is never preempted (see the module docs), so the default cap
            // keeps its worst case in the seconds range; operators with bigger nets
            // raise it deliberately.
            max_allocations: 1 << 16,
            max_deadline_ms: 30_000,
            default_deadline_ms: 10_000,
            max_memory_budget_bytes: 1 << 32,
            default_memory_budget_bytes: None,
        }
    }
}

/// The process-wide memory governor: one shared byte pool every admitted request's
/// *full effective budget* is reserved against up front.
///
/// Reserving the whole budget at admission (instead of tracking live usage) is what
/// keeps responses deterministic under pressure: a request that is admitted always
/// runs with exactly the budget its cache key was computed from — memory pressure can
/// shed a request (503 + `Retry-After`, [`Metrics::rejected_memory`]) but can never
/// *shrink* one, so a cached body never depends on what else the daemon was doing.
///
/// A budget larger than the pool itself is refused with a `400` instead: no retry can
/// ever make it admissible, so inviting one (and shedding cache for it) would only
/// hand hostile clients a free cache-flush loop.
#[derive(Debug)]
pub struct MemGovernor {
    limit: u64,
    in_use: std::sync::atomic::AtomicU64,
}

impl MemGovernor {
    /// A governor over `limit_bytes` of engine-allocation budget.
    pub fn new(limit_bytes: u64) -> Self {
        MemGovernor {
            limit: limit_bytes,
            in_use: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The configured pool size.
    pub fn limit_bytes(&self) -> u64 {
        self.limit
    }

    /// Bytes currently reserved by in-flight requests (the `mem_bytes_in_use` gauge).
    pub fn bytes_in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// Attempts to reserve `bytes` from the pool; `false` means the request must be
    /// shed. Reservations are all-or-nothing — a partial grant would hand the engines
    /// a budget the response body was not keyed under.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > self.limit {
                return false;
            }
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reserves `bytes` for the lifetime of the returned guard, which releases on
    /// drop — including the unwind path, so a panicking handler (the server keeps
    /// serving via `catch_unwind`) cannot leak pool bytes. `None` means the request
    /// must be shed.
    pub fn reserve(&self, bytes: u64) -> Option<MemReservation<'_>> {
        self.try_reserve(bytes).then_some(MemReservation {
            governor: self,
            bytes,
        })
    }

    /// Returns a reservation to the pool (saturating: a stray double-release clamps
    /// at zero rather than corrupting the gauge).
    pub fn release(&self, bytes: u64) {
        let mut current = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.in_use.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// An RAII hold on part of the [`MemGovernor`] pool: the bytes go back when the
/// guard drops, on the normal return path and on unwind alike.
#[derive(Debug)]
pub struct MemReservation<'a> {
    governor: &'a MemGovernor,
    bytes: u64,
}

impl Drop for MemReservation<'_> {
    fn drop(&mut self) {
        self.governor.release(self.bytes);
    }
}

/// What a handler needs besides the request: caps, the shared result cache and the
/// counters.
#[derive(Debug, Clone, Copy)]
pub struct HandlerCtx<'a> {
    /// Server-side caps.
    pub limits: &'a RequestLimits,
    /// The fingerprint-keyed response cache.
    pub cache: &'a ResultCache,
    /// Request counters.
    pub metrics: &'a Metrics,
    /// The process memory governor (`--mem-budget`); `None` runs without global
    /// memory admission control.
    pub governor: Option<&'a MemGovernor>,
}

/// A per-request deadline: checked between pipeline stages here, and threaded *into*
/// each engine stage as the armed [`CancelToken`] so a stage can abandon itself
/// mid-loop.
struct Deadline {
    start: Instant,
    limit: Duration,
    cancel: CancelToken,
}

impl Deadline {
    fn new(limit: Duration) -> Deadline {
        let start = Instant::now();
        Deadline {
            start,
            limit,
            cancel: CancelToken::with_deadline(start + limit),
        }
    }

    fn check(&self, metrics: &Metrics) -> Result<(), Response> {
        if self.start.elapsed() > self.limit {
            metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            Err(Response::error(503, "deadline exceeded"))
        } else {
            Ok(())
        }
    }
}

/// The `503` for a stage that cancelled *itself* mid-loop (its [`CancelToken`] fired).
/// Deliberately not memoised — like deadline 503s, it reflects load, not the request.
fn cancelled_response(metrics: &Metrics) -> Response {
    metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    metrics.cancelled_in_stage.fetch_add(1, Ordering::Relaxed);
    Response::error(503, "cancelled mid-stage: deadline exceeded")
}

/// The `503` for a stage whose [`MemoryBudget`] charge failed: the typed exhaustion
/// payload plus `Retry-After`, so clients can distinguish "your net needs more budget"
/// from a blown deadline. Never memoised (503s are excluded from the cache), so a
/// retry with a bigger budget computes fresh.
fn exhausted_response(metrics: &Metrics, e: &ResourceExhausted) -> Response {
    metrics.resource_exhausted.fetch_add(1, Ordering::Relaxed);
    Response::json(
        503,
        Json::obj([
            ("error", Json::from("memory budget exhausted")),
            ("stage", Json::from(e.stage)),
            ("limit_bytes", Json::from(e.limit_bytes)),
            ("requested_bytes", Json::from(e.requested_bytes)),
        ])
        .render(),
    )
    .with_header("Retry-After", "1")
}

/// Maps an engine [`Interrupt`] to the matching load-shed response.
fn interrupt_response(metrics: &Metrics, interrupt: &Interrupt) -> Response {
    match interrupt {
        Interrupt::Cancelled => cancelled_response(metrics),
        Interrupt::Exhausted(e) => exhausted_response(metrics, e),
    }
}

/// Routes an API request. `GET /healthz` and `GET /metrics` are answered by the server
/// itself (they need queue state); everything else lands here.
pub fn handle(ctx: &HandlerCtx<'_>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/schedule") => {
            ctx.metrics
                .schedule_requests
                .fetch_add(1, Ordering::Relaxed);
            cached_endpoint(ctx, request, Endpoint::Schedule)
        }
        ("POST", "/analyze") => {
            ctx.metrics.analyze_requests.fetch_add(1, Ordering::Relaxed);
            cached_endpoint(ctx, request, Endpoint::Analyze)
        }
        ("POST", "/codegen") => {
            ctx.metrics.codegen_requests.fetch_add(1, Ordering::Relaxed);
            cached_endpoint(ctx, request, Endpoint::Codegen)
        }
        ("POST", "/synthesize") => {
            ctx.metrics
                .synthesize_requests
                .fetch_add(1, Ordering::Relaxed);
            synthesize_endpoint(ctx, request)
        }
        (_, "/schedule" | "/analyze" | "/codegen") => {
            Response::error(405, "use POST with the net text as the request body")
        }
        (_, "/synthesize") => Response::error(
            405,
            "use POST with the transition-system text as the request body",
        ),
        ("GET" | "POST", _) => Response::error(404, "unknown endpoint"),
        _ => Response::error(405, "unsupported method"),
    }
}

/// The cacheable endpoints, with the tag folded into cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Schedule,
    Analyze,
    Codegen,
    Synthesize,
}

impl Endpoint {
    fn tag(self) -> u64 {
        match self {
            Endpoint::Schedule => 1,
            Endpoint::Analyze => 2,
            Endpoint::Codegen => 3,
            Endpoint::Synthesize => 4,
        }
    }
}

/// Shared POST plumbing: parse the net, resolve options, consult the cache, compute on
/// miss, memoise, and stamp the `X-Fcpn-Cache` header.
fn cached_endpoint(ctx: &HandlerCtx<'_>, request: &Request, endpoint: Endpoint) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => return Response::error(400, "empty body; POST a net in the text format"),
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let net = match parse_net(text) {
        Ok(net) => net,
        Err(e) => return Response::error(400, &format!("net parse failed: {e}")),
    };
    let options = match RequestOptions::from_query(request, ctx.limits) {
        Ok(options) => options,
        Err(response) => return response,
    };

    let key = options.cache_key(endpoint, net_fingerprint(&net));
    if options.use_result_cache {
        if let Some(hit) = ctx.cache.get(key) {
            return Response::json_shared(hit.status, Arc::clone(&hit.body))
                .with_header("X-Fcpn-Cache", "hit");
        }
    }

    let _reserved = match admit(ctx, &options) {
        Ok(reservation) => reservation,
        Err(response) => return response,
    };

    let deadline = Deadline::new(Duration::from_millis(options.deadline_ms));
    let response = match endpoint {
        Endpoint::Schedule => schedule(ctx, &net, &options, &deadline),
        Endpoint::Analyze => analyze(ctx, &net, &options, &deadline),
        Endpoint::Codegen => codegen(ctx, &net, &options, &deadline),
        Endpoint::Synthesize => unreachable!("/synthesize has its own plumbing"),
    };
    // Deterministic outcomes (including 4xx verdicts about the net itself) are
    // memoised; deadline 503s are not — they depend on load, not on the request.
    if options.use_result_cache && response.status != 503 {
        ctx.cache.insert(
            key,
            Arc::new(CachedResponse {
                status: response.status,
                body: Arc::clone(&response.body),
            }),
        );
    }
    response.with_header("X-Fcpn-Cache", "miss")
}

/// Admission against the process memory governor: the request's *full* effective
/// budget is reserved before any engine work starts, and a request that cannot be
/// covered is shed whole — never run with a smaller budget than its cache key was
/// computed from. A budget the pool could never cover is a client error (a retry
/// cannot help, so no Retry-After and no cache shedding a cheap hostile loop could
/// exploit); a budget that merely doesn't fit *right now* is genuine contention,
/// so the daemon sheds it retryable and halves the response cache, trading cold
/// hits for headroom so the invited retry can land. The reservation is an RAII
/// guard: it returns to the pool on drop, even if the handler panics.
fn admit<'a>(
    ctx: &HandlerCtx<'a>,
    options: &RequestOptions,
) -> Result<Option<MemReservation<'a>>, Response> {
    let Some(governor) = ctx.governor else {
        return Ok(None);
    };
    let bytes = options.memory_budget_bytes.unwrap_or(0);
    if bytes > governor.limit_bytes() {
        ctx.metrics.rejected_memory.fetch_add(1, Ordering::Relaxed);
        return Err(Response::error(
            400,
            &format!(
                "memory_budget_bytes={bytes} exceeds the server's memory pool \
                 of {} bytes",
                governor.limit_bytes()
            ),
        ));
    }
    match governor.reserve(bytes) {
        Some(guard) => Ok(Some(guard)),
        None => {
            ctx.metrics.rejected_memory.fetch_add(1, Ordering::Relaxed);
            ctx.cache.shed_half();
            Err(
                Response::error(503, "memory budget unavailable; retry later")
                    .with_header("Retry-After", "1"),
            )
        }
    }
}

/// `/synthesize` plumbing. Parallel to [`cached_endpoint`] but keyed on the *LTS*
/// fingerprint (the body is a transition system, not a net): parse, resolve options,
/// consult the cache, admit against the governor, synthesize, memoise.
fn synthesize_endpoint(ctx: &HandlerCtx<'_>, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) if !text.trim().is_empty() => text,
        Ok(_) => {
            return Response::error(
                400,
                "empty body; POST a transition system in the lts text format",
            )
        }
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let lts = match Lts::parse(text) {
        Ok(lts) => lts,
        Err(e) => return Response::error(400, &format!("lts parse failed: {e}")),
    };
    let options = match RequestOptions::from_query(request, ctx.limits) {
        Ok(options) => options,
        Err(response) => return response,
    };

    let key = options.cache_key(Endpoint::Synthesize, lts.fingerprint());
    if options.use_result_cache {
        if let Some(hit) = ctx.cache.get(key) {
            return Response::json_shared(hit.status, Arc::clone(&hit.body))
                .with_header("X-Fcpn-Cache", "hit");
        }
    }

    let _reserved = match admit(ctx, &options) {
        Ok(reservation) => reservation,
        Err(response) => return response,
    };

    let deadline = Deadline::new(Duration::from_millis(options.deadline_ms));
    let response = run_synthesis(ctx, &lts, &options, &deadline);
    // Same memoisation policy as the net endpoints: deterministic outcomes (including
    // honest "not synthesizable" verdicts and 4xx about the input) are cached;
    // load-dependent 503s are not.
    if options.use_result_cache && response.status != 503 {
        ctx.cache.insert(
            key,
            Arc::new(CachedResponse {
                status: response.status,
                body: Arc::clone(&response.body),
            }),
        );
    }
    response.with_header("X-Fcpn-Cache", "miss")
}

fn lts_fingerprint_hex(lts: &Lts) -> String {
    format!("0x{:032x}", lts.fingerprint())
}

fn run_synthesis(
    ctx: &HandlerCtx<'_>,
    lts: &Lts,
    options: &RequestOptions,
    deadline: &Deadline,
) -> Response {
    let synthesis_options = net_synthesis::SynthesisOptions {
        require_free_choice: options.require_free_choice,
        verify: options.verify,
        max_regions: options.max_regions,
        cancel: deadline.cancel.clone(),
        memory: options.memory(),
    };
    let head = |lts: &Lts, synthesizable: bool| {
        vec![
            ("lts".to_string(), Json::from(lts.name())),
            (
                "fingerprint".to_string(),
                Json::from(lts_fingerprint_hex(lts)),
            ),
            ("synthesizable".to_string(), Json::from(synthesizable)),
        ]
    };
    let witness = |lts: &Lts, witness: Json| {
        let mut pairs = head(lts, false);
        pairs.push(("witness".to_string(), witness));
        Response::json(200, Json::Obj(pairs).render())
    };
    match net_synthesis::synthesize(lts, &synthesis_options) {
        Ok(out) => {
            let mut pairs = head(lts, true);
            pairs.push((
                "stats".to_string(),
                Json::obj([
                    ("states", Json::from(out.stats.states)),
                    ("labels", Json::from(out.stats.labels)),
                    ("cycle_equations", Json::from(out.stats.cycle_equations)),
                    ("candidate_regions", Json::from(out.stats.candidate_regions)),
                    ("places", Json::from(out.stats.places)),
                    ("ssp_splits", Json::from(out.stats.ssp_splits)),
                    ("essp_instances", Json::from(out.stats.essp_instances)),
                    ("essp_composed", Json::from(out.stats.essp_composed)),
                    ("verified", Json::from(out.stats.verified)),
                ]),
            ));
            pairs.push((
                "net".to_string(),
                Json::from(fcpn_petri::io::to_text(&out.net)),
            ));
            Response::json(200, Json::Obj(pairs).render())
        }
        Err(SynthesisError::Interrupted(interrupt)) => interrupt_response(ctx.metrics, &interrupt),
        // Honest verdicts about the input, mirroring `/schedule`'s
        // `"schedulable": false` diagnosis: a 200 with the typed witness.
        Err(SynthesisError::StateSeparation { left, right }) => witness(
            lts,
            Json::obj([
                ("kind", Json::from("state-separation")),
                ("left", Json::from(left)),
                ("right", Json::from(right)),
            ]),
        ),
        Err(SynthesisError::EventStateSeparation { state, label }) => witness(
            lts,
            Json::obj([
                ("kind", Json::from("event-state-separation")),
                ("state", Json::from(state)),
                ("label", Json::from(label)),
            ]),
        ),
        Err(SynthesisError::NotFreeChoice { place, transition }) => witness(
            lts,
            Json::obj([
                ("kind", Json::from("not-free-choice")),
                ("place", Json::from(place)),
                ("transition", Json::from(transition)),
            ]),
        ),
        // Defective inputs (an unreachable state can never appear in a reachability
        // graph) and blown size bounds are client errors, deterministic and cacheable.
        Err(
            e @ (SynthesisError::EmptyInput
            | SynthesisError::IncompleteInput
            | SynthesisError::Nondeterministic { .. }
            | SynthesisError::Unreachable { .. }
            | SynthesisError::RegionOverflow),
        ) => Response::error(422, &e.to_string()),
        // The verification backstop only trips on an engine bug.
        Err(e @ SynthesisError::RealizationMismatch) => {
            Response::error(500, &format!("synthesis failed: {e}"))
        }
        Err(other) => Response::error(500, &format!("synthesis failed: {other}")),
    }
}

/// Effective per-request options after clamping against [`RequestLimits`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct RequestOptions {
    threads: usize,
    reuse_component_cache: bool,
    use_result_cache: bool,
    max_allocations: u128,
    max_markings: usize,
    max_tokens_per_place: u64,
    max_nodes: usize,
    deadline_ms: u64,
    /// Effective engine-allocation byte budget; `None` = unlimited.
    memory_budget_bytes: Option<u64>,
    /// `/analyze` check selection, as a bitmask over [`CHECKS`].
    checks: u8,
    /// `/codegen` target language.
    rust: bool,
    /// `/synthesize` cap on the extremal-region basis.
    max_regions: usize,
    /// `/synthesize` verification pass (re-explore + isomorphism check).
    verify: bool,
    /// `/synthesize` free-choice requirement on the emitted net.
    require_free_choice: bool,
}

/// The `/analyze` checks in bitmask order.
const CHECKS: [&str; 4] = ["reachability", "deadlock", "liveness", "boundedness"];

impl RequestOptions {
    fn from_query(request: &Request, limits: &RequestLimits) -> Result<Self, Response> {
        let bad = |name: &str| Response::error(400, &format!("invalid value for `{name}`"));
        let parse_u64 = |name: &str, default: u64| -> Result<u64, Response> {
            match request.query_param(name) {
                None => Ok(default),
                Some(v) => v.parse::<u64>().map_err(|_| bad(name)),
            }
        };
        let parse_bool = |name: &str, default: bool| -> Result<bool, Response> {
            match request.query_param(name) {
                None => Ok(default),
                Some("1") | Some("true") => Ok(true),
                Some("0") | Some("false") => Ok(false),
                Some(_) => Err(bad(name)),
            }
        };

        let threads = (parse_u64("threads", 1)? as usize).clamp(1, limits.max_threads);
        let defaults = ReachabilityOptions::default();
        let max_markings = (parse_u64("max_markings", defaults.max_markings as u64)? as usize)
            .clamp(1, limits.max_markings);
        let max_tokens_per_place =
            parse_u64("max_tokens_per_place", defaults.max_tokens_per_place)?
                .clamp(1, limits.max_tokens_per_place);
        let max_nodes = (parse_u64("max_nodes", BoundednessOptions::default().max_nodes as u64)?
            as usize)
            .clamp(1, limits.max_coverability_nodes);
        let max_allocations = match request.query_param("max_allocations") {
            None => AllocationOptions::default()
                .max_allocations
                .min(limits.max_allocations),
            Some(v) => v
                .parse::<u128>()
                .map_err(|_| bad("max_allocations"))?
                .clamp(1, limits.max_allocations),
        };
        let deadline_ms =
            parse_u64("deadline_ms", limits.default_deadline_ms)?.clamp(1, limits.max_deadline_ms);
        let memory_budget_bytes = match request.query_param("memory_budget_bytes") {
            None => limits
                .default_memory_budget_bytes
                .map(|b| b.clamp(1, limits.max_memory_budget_bytes)),
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| bad("memory_budget_bytes"))?
                    .clamp(1, limits.max_memory_budget_bytes),
            ),
        };

        let checks = match request.query_param("checks") {
            None => 0b1111u8,
            Some(list) => {
                let mut mask = 0u8;
                for name in list.split(',').filter(|s| !s.is_empty()) {
                    match CHECKS.iter().position(|&c| c == name) {
                        Some(bit) => mask |= 1 << bit,
                        None => {
                            return Err(Response::error(
                                400,
                                &format!(
                                    "unknown check `{name}` (expected one of {})",
                                    CHECKS.join(", ")
                                ),
                            ))
                        }
                    }
                }
                if mask == 0 {
                    return Err(bad("checks"));
                }
                mask
            }
        };
        let rust = match request.query_param("lang") {
            None | Some("c") => false,
            Some("rust") => true,
            Some(_) => return Err(bad("lang")),
        };
        let synthesis_defaults = net_synthesis::SynthesisOptions::default();
        // The region basis is an allocation-shaped cost (each candidate materialises
        // gradient vectors over every state), so it clamps against the same cap as the
        // scheduling sweep's allocation budget.
        let max_regions = (parse_u64("max_regions", synthesis_defaults.max_regions as u64)?
            as usize)
            .clamp(1, limits.max_allocations.min(usize::MAX as u128) as usize);

        Ok(RequestOptions {
            threads,
            reuse_component_cache: parse_bool("component_cache", true)?,
            use_result_cache: parse_bool("cache", true)?,
            max_allocations,
            max_markings,
            max_tokens_per_place,
            max_nodes,
            deadline_ms,
            memory_budget_bytes,
            checks,
            rust,
            max_regions,
            verify: parse_bool("verify", synthesis_defaults.verify)?,
            require_free_choice: parse_bool("free_choice", synthesis_defaults.require_free_choice)?,
        })
    }

    fn wants(&self, check: &str) -> bool {
        CHECKS
            .iter()
            .position(|&c| c == check)
            .is_some_and(|bit| self.checks & (1 << bit) != 0)
    }

    /// Folds every response-relevant option with the endpoint tag and the net
    /// fingerprint into the result-cache key. `deadline_ms` and `use_result_cache` are
    /// deliberately excluded: they never change the body of a completed response.
    fn cache_key(&self, endpoint: Endpoint, fingerprint: u128) -> u128 {
        let mut fp = Fingerprint128::new();
        fp.fold(endpoint.tag());
        fp.fold(fingerprint as u64);
        fp.fold((fingerprint >> 64) as u64);
        fp.fold(self.threads as u64);
        fp.fold(self.reuse_component_cache as u64);
        fp.fold(self.max_allocations as u64);
        fp.fold((self.max_allocations >> 64) as u64);
        fp.fold(self.max_markings as u64);
        fp.fold(self.max_tokens_per_place);
        fp.fold(self.max_nodes as u64);
        // The budget changes which error body a too-big net gets, so it is
        // response-relevant; the presence bit separates "no budget" from any value.
        fp.fold(self.memory_budget_bytes.is_some() as u64);
        fp.fold(self.memory_budget_bytes.unwrap_or(0));
        fp.fold(self.checks as u64);
        fp.fold(self.rust as u64);
        fp.fold(self.max_regions as u64);
        fp.fold(self.verify as u64);
        fp.fold(self.require_free_choice as u64);
        fp.finish()
    }

    /// The per-request engine budget: armed at the effective byte limit, or unlimited.
    fn memory(&self) -> MemoryBudget {
        match self.memory_budget_bytes {
            Some(bytes) => MemoryBudget::with_limit(bytes),
            None => MemoryBudget::unlimited(),
        }
    }

    fn qss(&self, cancel: CancelToken) -> QssOptions {
        QssOptions {
            allocation: AllocationOptions {
                max_allocations: self.max_allocations,
            },
            reuse_component_cache: self.reuse_component_cache,
            threads: self.threads,
            cancel,
            memory: self.memory(),
        }
    }

    fn explore(&self, cancel: CancelToken) -> ExploreOptions {
        ExploreOptions {
            reach: ReachabilityOptions {
                max_markings: self.max_markings,
                max_tokens_per_place: self.max_tokens_per_place,
            },
            threads: self.threads,
            cancel,
            memory: self.memory(),
            ..ExploreOptions::default()
        }
    }
}

fn fingerprint_hex(net: &PetriNet) -> String {
    format!("0x{:032x}", net_fingerprint(net))
}

fn names(net: &PetriNet, transitions: &[fcpn_petri::TransitionId]) -> Json {
    Json::arr(
        transitions
            .iter()
            .map(|&t| Json::from(net.transition_name(t))),
    )
}

// ---------------------------------------------------------------------------
// /schedule
// ---------------------------------------------------------------------------

fn schedule(
    ctx: &HandlerCtx<'_>,
    net: &PetriNet,
    options: &RequestOptions,
    deadline: &Deadline,
) -> Response {
    // No between-stage deadline check here — the handler starts at elapsed ~0 and the
    // sweep is a single stage — but the stage itself carries the armed token, so a
    // blown deadline aborts the sweep from the inside within one polling stride.
    match quasi_static_schedule(net, &options.qss(deadline.cancel.clone())) {
        Ok(outcome) => Response::json(200, schedule_response_body(net, &outcome)),
        Err(QssError::Cancelled) => cancelled_response(ctx.metrics),
        Err(QssError::ResourceExhausted(e)) => exhausted_response(ctx.metrics, &e),
        Err(e) => qss_error_response(net, &e),
    }
}

/// Renders the deterministic `/schedule` response body for an outcome. Public so tests
/// and the load generator can assert the daemon's answers are bit-identical to direct
/// library calls.
pub fn schedule_response_body(net: &PetriNet, outcome: &QssOutcome) -> String {
    let mut pairs = vec![
        ("net".to_string(), Json::from(net.name())),
        ("fingerprint".to_string(), Json::from(fingerprint_hex(net))),
        (
            "schedulable".to_string(),
            Json::from(outcome.is_schedulable()),
        ),
    ];
    match outcome {
        QssOutcome::Schedulable(schedule) => {
            pairs.push((
                "components_examined".to_string(),
                Json::from(schedule.cycle_count()),
            ));
            pairs.push((
                "cycles".to_string(),
                Json::arr(schedule.cycles.iter().map(|cycle| {
                    Json::obj([
                        ("allocation", Json::from(cycle.allocation.describe(net))),
                        ("sequence", names(net, &cycle.sequence)),
                        (
                            "counts",
                            Json::arr(cycle.counts.iter().map(|&c| Json::from(c))),
                        ),
                        (
                            "buffer_bounds",
                            Json::arr(cycle.buffer_bounds.iter().map(|&b| Json::from(b))),
                        ),
                    ])
                })),
            ));
        }
        QssOutcome::NotSchedulable(report) => {
            pairs.push((
                "components_examined".to_string(),
                Json::from(report.components_examined),
            ));
            pairs.push((
                "failures".to_string(),
                Json::arr(report.failures.iter().map(|failure| {
                    Json::obj([
                        ("allocation", Json::from(failure.allocation.as_str())),
                        ("transitions", names(net, &failure.transitions)),
                        ("reason", failure_json(net, &failure.failure)),
                    ])
                })),
            ));
        }
    }
    Json::Obj(pairs).render()
}

fn failure_json(net: &PetriNet, failure: &ComponentFailure) -> Json {
    match failure {
        ComponentFailure::Inconsistent { uncovered } => Json::obj([
            ("kind", Json::from("inconsistent")),
            ("uncovered", names(net, uncovered)),
        ]),
        ComponentFailure::SourceNotCovered { source } => Json::obj([
            ("kind", Json::from("source-not-covered")),
            ("source", Json::from(net.transition_name(*source))),
        ]),
        ComponentFailure::Deadlock { remaining, fired } => Json::obj([
            ("kind", Json::from("deadlock")),
            (
                "remaining",
                Json::arr(remaining.iter().map(|&(t, owed)| {
                    Json::obj([
                        ("transition", Json::from(net.transition_name(t))),
                        ("owed", Json::from(owed)),
                    ])
                })),
            ),
            ("fired", names(net, fired)),
        ]),
    }
}

fn qss_error_response(net: &PetriNet, error: &QssError) -> Response {
    match error {
        QssError::NotFreeChoice { violations } => Response::json(
            422,
            Json::obj([
                ("error", Json::from("not a free-choice net")),
                (
                    "violations",
                    Json::arr(violations.iter().map(|&p| Json::from(net.place_name(p)))),
                ),
            ])
            .render(),
        ),
        QssError::Empty => Response::error(422, "net has no transitions"),
        QssError::TooManyAllocations { required, limit } => Response::json(
            422,
            Json::obj([
                ("error", Json::from("too many allocations")),
                ("required", Json::from(required.to_string())),
                ("limit", Json::from(limit.to_string())),
            ])
            .render(),
        ),
        other => Response::error(500, &format!("scheduling failed: {other}")),
    }
}

// ---------------------------------------------------------------------------
// /analyze
// ---------------------------------------------------------------------------

fn analyze(
    ctx: &HandlerCtx<'_>,
    net: &PetriNet,
    options: &RequestOptions,
    deadline: &Deadline,
) -> Response {
    let explore = options.explore(deadline.cancel.clone());
    let mut results: Vec<(String, Json)> = Vec::new();

    // Reachability, deadlock and liveness all read the same bounded state space, so
    // one exploration serves every requested check (boundedness runs its own covering
    // search below). The deadline is checked between the checks themselves, and the
    // exploration carries the armed token so it can cancel itself mid-loop.
    let space = if options.wants("reachability")
        || options.wants("deadlock")
        || options.wants("liveness")
    {
        if let Err(response) = deadline.check(ctx.metrics) {
            return response;
        }
        match fcpn_petri::statespace::StateSpace::try_explore_with(net, &explore) {
            Ok(space) => Some(space),
            Err(interrupt) => return interrupt_response(ctx.metrics, &interrupt),
        }
    } else {
        None
    };

    if options.wants("reachability") {
        let space = space.as_ref().expect("explored above");
        // Same numbers `ReachabilityGraph::from_statespace` would expose, read off the
        // space directly so the deadlock/liveness checks can reuse it.
        results.push((
            "reachability".to_string(),
            Json::obj([
                ("states", Json::from(space.state_count())),
                ("edges", Json::from(space.edge_count())),
                ("complete", Json::from(space.is_complete())),
                (
                    "max_tokens_observed",
                    Json::from(space.max_tokens_observed()),
                ),
                ("dead_markings", Json::from(space.dead_states().len())),
            ]),
        ));
    }
    if options.wants("deadlock") {
        if let Err(response) = deadline.check(ctx.metrics) {
            return response;
        }
        let report = find_deadlock_in(net, space.as_ref().expect("explored above"));
        results.push((
            "deadlock".to_string(),
            match report {
                DeadlockReport::DeadlockFree => {
                    Json::obj([("verdict", Json::from("deadlock-free"))])
                }
                DeadlockReport::Deadlock { marking, trace } => Json::obj([
                    ("verdict", Json::from("deadlock")),
                    (
                        "marking",
                        Json::arr(marking.as_slice().iter().map(|&t| Json::from(t))),
                    ),
                    ("trace", names(net, &trace)),
                ]),
                DeadlockReport::Unknown => Json::obj([("verdict", Json::from("unknown"))]),
            },
        ));
    }
    if options.wants("liveness") {
        if let Err(response) = deadline.check(ctx.metrics) {
            return response;
        }
        let report = check_liveness_in(net, space.as_ref().expect("explored above"));
        results.push((
            "liveness".to_string(),
            match report {
                LivenessReport::Live => Json::obj([("verdict", Json::from("live"))]),
                LivenessReport::NotLive { transitions } => Json::obj([
                    ("verdict", Json::from("not-live")),
                    ("not_live", names(net, &transitions)),
                ]),
                LivenessReport::Unknown => Json::obj([("verdict", Json::from("unknown"))]),
            },
        ));
    }
    if options.wants("boundedness") {
        if let Err(response) = deadline.check(ctx.metrics) {
            return response;
        }
        // A *complete* shared exploration already enumerates the full reachable set,
        // which proves boundedness directly with the same `k` the covering search
        // would report (the exact shortcut `check_boundedness_with` uses for its
        // parallel path); only fall back to Karp–Miller when no complete space is at
        // hand.
        let verdict = match space.as_ref() {
            Some(space) if space.is_complete() => Boundedness::Bounded {
                k: space.max_tokens_observed(),
            },
            _ => match try_check_boundedness_with(
                net,
                BoundednessOptions {
                    max_nodes: options.max_nodes,
                },
                &explore,
            ) {
                Ok(verdict) => verdict,
                Err(interrupt) => return interrupt_response(ctx.metrics, &interrupt),
            },
        };
        results.push((
            "boundedness".to_string(),
            match verdict {
                Boundedness::Bounded { k } => {
                    Json::obj([("verdict", Json::from("bounded")), ("k", Json::from(k))])
                }
                Boundedness::Unbounded { places, witness } => Json::obj([
                    ("verdict", Json::from("unbounded")),
                    (
                        "places",
                        Json::arr(places.iter().map(|&p| Json::from(net.place_name(p)))),
                    ),
                    ("witness", names(net, &witness)),
                ]),
                Boundedness::Unknown => Json::obj([("verdict", Json::from("unknown"))]),
            },
        ));
    }

    Response::json(
        200,
        Json::obj([
            ("net".to_string(), Json::from(net.name())),
            ("fingerprint".to_string(), Json::from(fingerprint_hex(net))),
            ("results".to_string(), Json::Obj(results)),
        ])
        .render(),
    )
}

// ---------------------------------------------------------------------------
// /codegen
// ---------------------------------------------------------------------------

fn codegen(
    ctx: &HandlerCtx<'_>,
    net: &PetriNet,
    options: &RequestOptions,
    deadline: &Deadline,
) -> Response {
    let outcome = match quasi_static_schedule(net, &options.qss(deadline.cancel.clone())) {
        Ok(outcome) => outcome,
        Err(QssError::Cancelled) => return cancelled_response(ctx.metrics),
        Err(QssError::ResourceExhausted(e)) => return exhausted_response(ctx.metrics, &e),
        Err(e) => return qss_error_response(net, &e),
    };
    let schedule = match outcome {
        QssOutcome::Schedulable(schedule) => schedule,
        QssOutcome::NotSchedulable(report) => {
            return Response::json(
                422,
                Json::obj([
                    (
                        "error",
                        Json::from("net is not quasi-statically schedulable"),
                    ),
                    (
                        "components_examined",
                        Json::from(report.components_examined),
                    ),
                    ("failing_components", Json::from(report.failures.len())),
                ])
                .render(),
            )
        }
    };
    if let Err(response) = deadline.check(ctx.metrics) {
        return response;
    }
    let program = match synthesize(net, &schedule, SynthesisOptions::default()) {
        Ok(program) => program,
        Err(e) => return Response::error(500, &format!("synthesis failed: {e}")),
    };
    if let Err(response) = deadline.check(ctx.metrics) {
        return response;
    }
    let (language, code) = if options.rust {
        ("rust", emit_rust(&program, net, RustEmitOptions::default()))
    } else {
        ("c", emit_c(&program, net, CEmitOptions::default()))
    };
    let metrics = CodeMetrics::of(&program, net);
    Response::json(
        200,
        Json::obj([
            ("net", Json::from(net.name())),
            ("fingerprint", Json::from(fingerprint_hex(net))),
            ("schedulable", Json::from(true)),
            ("cycles", Json::from(schedule.cycle_count())),
            (
                "metrics",
                Json::obj([
                    ("tasks", Json::from(metrics.tasks)),
                    ("lines_of_c", Json::from(metrics.lines_of_c)),
                    ("ir_statements", Json::from(metrics.ir_statements)),
                    ("max_nesting", Json::from(metrics.max_nesting)),
                ]),
            ),
            ("language", Json::from(language)),
            ("code", Json::from(code)),
        ])
        .render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use fcpn_petri::gallery;
    use fcpn_petri::io::to_text;

    fn ctx_parts() -> (RequestLimits, ResultCache, Metrics) {
        (
            RequestLimits::default(),
            ResultCache::new(4, 64),
            Metrics::new(),
        )
    }

    fn post(path_query: &str, body: &str) -> Request {
        let (path, query_raw) = match path_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_query, ""),
        };
        let query = query_raw
            .split('&')
            .filter(|s| !s.is_empty())
            .map(|pair| {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                (k.to_string(), v.to_string())
            })
            .collect();
        Request {
            method: "POST".into(),
            path: path.into(),
            query,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn schedule_body_matches_library_call_bit_for_bit() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        for net in [gallery::figure3a(), gallery::figure4(), gallery::figure5()] {
            let request = post("/schedule", &to_text(&net));
            let response = handle(&ctx, &request);
            assert_eq!(response.status, 200);
            let expected = schedule_response_body(
                &net,
                &quasi_static_schedule(&net, &QssOptions::default()).unwrap(),
            );
            assert_eq!(*response.body, expected, "net {}", net.name());
        }
    }

    #[test]
    fn schedule_serves_second_request_from_cache() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let request = post("/schedule", &to_text(&gallery::figure4()));
        let first = handle(&ctx, &request);
        let second = handle(&ctx, &request);
        assert_eq!(first.body, second.body);
        assert_eq!(cache.hits(), 1);
        let header = |r: &Response| {
            r.extra_headers
                .iter()
                .find(|(k, _)| k == "X-Fcpn-Cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(header(&first).as_deref(), Some("miss"));
        assert_eq!(header(&second).as_deref(), Some("hit"));
    }

    #[test]
    fn distinct_options_use_distinct_cache_slots() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let text = to_text(&gallery::figure4());
        handle(&ctx, &post("/schedule?threads=1", &text));
        handle(&ctx, &post("/schedule?threads=2", &text));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn not_free_choice_is_422_with_violations() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let response = handle(&ctx, &post("/schedule", &to_text(&gallery::figure1b())));
        assert_eq!(response.status, 422);
        let value = parse(&response.body).unwrap();
        assert!(!value
            .get("violations")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn allocation_budget_maps_to_422() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let text = to_text(&gallery::choice_chain(6));
        let response = handle(&ctx, &post("/schedule?max_allocations=4", &text));
        assert_eq!(response.status, 422);
        let value = parse(&response.body).unwrap();
        assert_eq!(
            value.get("error").unwrap().as_str(),
            Some("too many allocations")
        );
    }

    #[test]
    fn analyze_reports_all_checks_by_default() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let response = handle(&ctx, &post("/analyze", &to_text(&gallery::figure2())));
        assert_eq!(response.status, 200);
        let value = parse(&response.body).unwrap();
        let results = value.get("results").unwrap();
        for check in CHECKS {
            assert!(results.get(check).is_some(), "missing {check}");
        }
        // Figure 2 has a source transition, so it is structurally unbounded.
        assert_eq!(
            results
                .get("boundedness")
                .unwrap()
                .get("verdict")
                .unwrap()
                .as_str(),
            Some("unbounded")
        );
        // A closed ring is bounded, and the analyzer reports the observed k.
        let ring = handle(
            &ctx,
            &post(
                "/analyze?checks=boundedness",
                &to_text(&gallery::marked_ring(4, 2)),
            ),
        );
        let ring_value = parse(&ring.body).unwrap();
        let verdict = ring_value
            .get("results")
            .unwrap()
            .get("boundedness")
            .unwrap();
        assert_eq!(verdict.get("verdict").unwrap().as_str(), Some("bounded"));
        assert_eq!(verdict.get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn analyze_check_subset_and_unknown_check() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let text = to_text(&gallery::figure2());
        let response = handle(&ctx, &post("/analyze?checks=deadlock", &text));
        let value = parse(&response.body).unwrap();
        let results = value.get("results").unwrap().as_obj().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "deadlock");
        let bad = handle(&ctx, &post("/analyze?checks=nonsense", &text));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn codegen_emits_compilable_looking_c() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let response = handle(&ctx, &post("/codegen", &to_text(&gallery::figure4())));
        assert_eq!(response.status, 200);
        let value = parse(&response.body).unwrap();
        assert!(value
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("void"));
        assert_eq!(value.get("language").unwrap().as_str(), Some("c"));
        assert!(value.get("metrics").unwrap().get("tasks").unwrap().as_u64() >= Some(1));
    }

    #[test]
    fn malformed_net_is_400_with_line() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let response = handle(&ctx, &post("/schedule", "net x\nbogus line"));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("line 2"));
    }

    #[test]
    fn unknown_path_and_wrong_method() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        assert_eq!(handle(&ctx, &post("/nope", "x")).status, 404);
        let mut get = post("/schedule", "");
        get.method = "GET".into();
        assert_eq!(handle(&ctx, &get).status, 405);
    }

    #[test]
    fn mem_governor_reserves_whole_budgets_and_releases() {
        let governor = MemGovernor::new(100);
        assert!(governor.try_reserve(60));
        assert_eq!(governor.bytes_in_use(), 60);
        // All-or-nothing: 50 more does not fit, and nothing is partially taken.
        assert!(!governor.try_reserve(50));
        assert_eq!(governor.bytes_in_use(), 60);
        assert!(governor.try_reserve(40));
        governor.release(60);
        governor.release(40);
        assert_eq!(governor.bytes_in_use(), 0);
        // A stray double-release clamps at zero instead of wrapping.
        governor.release(7);
        assert_eq!(governor.bytes_in_use(), 0);
    }

    #[test]
    fn tiny_memory_budget_is_a_typed_503_and_never_cached() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let text = to_text(&gallery::figure5());
        let response = handle(
            &ctx,
            &post("/analyze?checks=reachability&memory_budget_bytes=64", &text),
        );
        assert_eq!(response.status, 503);
        let value = parse(&response.body).unwrap();
        assert_eq!(
            value.get("error").unwrap().as_str(),
            Some("memory budget exhausted")
        );
        assert_eq!(value.get("stage").unwrap().as_str(), Some("reachability"));
        assert_eq!(value.get("limit_bytes").unwrap().as_u64(), Some(64));
        assert!(value.get("requested_bytes").unwrap().as_u64().unwrap() > 0);
        assert!(response
            .extra_headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
        assert_eq!(metrics.resource_exhausted.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 0, "exhaustion 503s must not be memoised");
        // The same request with a workable budget computes normally.
        let roomy = handle(
            &ctx,
            &post(
                &format!(
                    "/analyze?checks=reachability&memory_budget_bytes={}",
                    1u64 << 28
                ),
                &text,
            ),
        );
        assert_eq!(roomy.status, 200);
    }

    #[test]
    fn governor_rejects_over_pool_budgets_without_inviting_retries() {
        let (limits, cache, metrics) = ctx_parts();
        let governor = MemGovernor::new(1 << 20);
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: Some(&governor),
        };
        let text = to_text(&gallery::figure4());
        // Seed the cache so we can observe that a never-admissible request does not
        // flush it (that would be a free cache-flush loop for hostile clients).
        let warm = handle(&ctx, &post("/schedule", &text));
        assert_eq!(warm.status, 200);
        let cached_before = cache.len();
        assert!(cached_before > 0);

        let rejected = handle(
            &ctx,
            &post(
                &format!("/schedule?memory_budget_bytes={}", 1u64 << 21),
                &text,
            ),
        );
        assert_eq!(
            rejected.status, 400,
            "over-pool budget can never be admitted"
        );
        assert!(
            !rejected
                .extra_headers
                .iter()
                .any(|(k, _)| k == "Retry-After"),
            "a retry cannot help, so none is invited"
        );
        assert_eq!(metrics.rejected_memory.load(Ordering::Relaxed), 1);
        assert_eq!(
            cache.len(),
            cached_before,
            "never-admissible requests must not shed the cache"
        );
    }

    #[test]
    fn governor_sheds_contended_requests_with_retry_after() {
        let (limits, cache, metrics) = ctx_parts();
        let governor = MemGovernor::new(1 << 20);
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: Some(&governor),
        };
        let text = to_text(&gallery::figure4());
        // Simulate an in-flight request holding most of the pool: an affordable
        // budget that does not fit *right now* is shed retryable.
        let in_flight = governor
            .reserve((1 << 20) - (1 << 16))
            .expect("pool is free");
        let shed = handle(
            &ctx,
            &post(
                &format!("/schedule?memory_budget_bytes={}&cache=0", 1u64 << 17),
                &text,
            ),
        );
        assert_eq!(shed.status, 503);
        assert!(shed
            .extra_headers
            .iter()
            .any(|(k, v)| k == "Retry-After" && v == "1"));
        assert_eq!(metrics.rejected_memory.load(Ordering::Relaxed), 1);
        drop(in_flight);
        assert_eq!(
            governor.bytes_in_use(),
            0,
            "the guard returns its bytes on drop"
        );
        // With the pool free again the same request is admitted, and its reservation
        // is returned once the response is built.
        let admitted = handle(
            &ctx,
            &post(
                &format!("/schedule?memory_budget_bytes={}&cache=0", 1u64 << 17),
                &text,
            ),
        );
        assert_eq!(admitted.status, 200);
        assert_eq!(governor.bytes_in_use(), 0);
    }

    #[test]
    fn synthesize_roundtrips_an_lts_and_caches_it() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        // A complete state space of a bounded gallery net, shipped as LTS text.
        let net = gallery::marked_ring(4, 2);
        let space = fcpn_petri::statespace::StateSpace::explore(
            &net,
            fcpn_petri::analysis::ReachabilityOptions::default(),
        );
        let lts = fcpn_petri::synthesis::Lts::from_statespace(&net, &space).unwrap();
        let request = post("/synthesize", &lts.to_text());
        let first = handle(&ctx, &request);
        assert_eq!(first.status, 200, "{}", first.body);
        let value = parse(&first.body).unwrap();
        assert_eq!(value.get("synthesizable").unwrap().as_bool(), Some(true));
        assert_eq!(
            value
                .get("stats")
                .unwrap()
                .get("verified")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        // The emitted net text parses and realises the same behaviour.
        let emitted = parse_net(value.get("net").unwrap().as_str().unwrap()).unwrap();
        let re_space = fcpn_petri::statespace::StateSpace::explore(
            &emitted,
            fcpn_petri::analysis::ReachabilityOptions::default(),
        );
        assert_eq!(re_space.state_count(), space.state_count());
        let second = handle(&ctx, &request);
        assert_eq!(first.body, second.body);
        assert_eq!(cache.hits(), 1);
        assert_eq!(metrics.synthesize_requests.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn synthesize_answers_unsynthesizable_with_a_witness() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let body = "lts chain\nedge s0 a s1\nedge s1 a s2\nedge s0 b s0\nedge s2 b s2\n";
        let response = handle(&ctx, &post("/synthesize", body));
        assert_eq!(response.status, 200);
        let value = parse(&response.body).unwrap();
        assert_eq!(value.get("synthesizable").unwrap().as_bool(), Some(false));
        let witness = value.get("witness").unwrap();
        assert_eq!(
            witness.get("kind").unwrap().as_str(),
            Some("event-state-separation")
        );
        assert_eq!(witness.get("state").unwrap().as_str(), Some("s1"));
        assert_eq!(witness.get("label").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn synthesize_rejects_defective_inputs() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        // Parse-level defect: conflicting deterministic edges → 400 with the line.
        let nondet = handle(&ctx, &post("/synthesize", "edge s0 a s1\nedge s0 a s2\n"));
        assert_eq!(nondet.status, 400);
        // Structural defect: an unreachable state → 422 with the typed message.
        let unreachable = handle(&ctx, &post("/synthesize", "edge s0 a s1\nstate lost\n"));
        assert_eq!(unreachable.status, 422, "{}", unreachable.body);
        assert!(unreachable.body.contains("lost"));
        // Wrong method → 405.
        let mut get = post("/synthesize", "");
        get.method = "GET".into();
        assert_eq!(handle(&ctx, &get).status, 405);
    }

    #[test]
    fn synthesize_honours_deadline_and_memory_options() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let net = gallery::marked_ring(5, 2);
        let space = fcpn_petri::statespace::StateSpace::explore(
            &net,
            fcpn_petri::analysis::ReachabilityOptions::default(),
        );
        let lts = fcpn_petri::synthesis::Lts::from_statespace(&net, &space).unwrap();
        let body = lts.to_text();
        let squeezed = handle(
            &ctx,
            &post("/synthesize?memory_budget_bytes=64&cache=0", &body),
        );
        assert_eq!(squeezed.status, 503, "{}", squeezed.body);
        let value = parse(&squeezed.body).unwrap();
        assert_eq!(
            value.get("error").unwrap().as_str(),
            Some("memory budget exhausted")
        );
        assert!(value
            .get("stage")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("synthesis-"));
        assert_eq!(cache.len(), 0, "503s must not be memoised");
        // A roomy budget computes normally; a squeezed region cap is a typed 422.
        let ok = handle(
            &ctx,
            &post(
                &format!("/synthesize?memory_budget_bytes={}", 1u64 << 28),
                &body,
            ),
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        let overflow = handle(&ctx, &post("/synthesize?max_regions=1", &body));
        assert_eq!(overflow.status, 422, "{}", overflow.body);
        assert!(overflow.body.contains("region"));
        assert_eq!(cache.hits(), 0, "distinct options use distinct cache keys");
    }

    #[test]
    fn bad_option_values_are_400() {
        let (limits, cache, metrics) = ctx_parts();
        let ctx = HandlerCtx {
            limits: &limits,
            cache: &cache,
            metrics: &metrics,
            governor: None,
        };
        let text = to_text(&gallery::figure4());
        for query in [
            "/schedule?threads=abc",
            "/schedule?component_cache=maybe",
            "/analyze?max_markings=-2",
            "/codegen?lang=fortran",
        ] {
            let response = handle(&ctx, &post(query, &text));
            assert_eq!(response.status, 400, "{query}");
        }
    }
}
