//! Per-tenant admission control: token-bucket rate limits and in-flight quotas.
//!
//! Request cost in this daemon is super-linear in net size (the scheduling sweep is
//! exponential in the worst case), so an unmetered client is a denial-of-service
//! vector by construction. The governor meters work per *tenant* — the value of the
//! `X-Fcpn-Tenant` request header, with a shared `"default"` bucket for anonymous
//! traffic — using a classic token bucket (sustained rate + burst capacity) plus an
//! optional cap on concurrently executing requests. Exhausting the bucket yields
//! `429 Too Many Requests` with a parseable `Retry-After`; exceeding the in-flight
//! quota is also a 429 but with `Retry-After: 1` (retry when a slot frees, not after
//! a refill window).
//!
//! Rate limiting is **off by default** (`rate == 0.0`): the governor then admits
//! everything and only keeps per-tenant request counters for `/metrics`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// The tenant key used when no `X-Fcpn-Tenant` header is present.
pub const DEFAULT_TENANT: &str = "default";

/// Longest accepted tenant key; longer values fall back to [`DEFAULT_TENANT`] so a
/// hostile client cannot mint unbounded distinct buckets with random headers.
pub const MAX_TENANT_KEY_LEN: usize = 64;

/// Admission policy applied uniformly to every tenant bucket.
#[derive(Debug, Clone, Copy)]
pub struct TenantPolicy {
    /// Sustained admitted requests per second per tenant; `0.0` disables rate
    /// limiting (and the in-flight quota) entirely.
    pub rate: f64,
    /// Bucket capacity: how many requests a tenant may burst above the sustained
    /// rate after a quiet period.
    pub burst: f64,
    /// Maximum concurrently executing requests per tenant; `0` means unlimited.
    pub max_in_flight: u32,
    /// Bound on distinct tenant buckets held at once; beyond it, the stalest bucket
    /// is evicted.
    pub max_tenants: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            rate: 0.0,
            burst: 64.0,
            max_in_flight: 0,
            max_tenants: 256,
        }
    }
}

impl TenantPolicy {
    /// Whether any metering (rate or quota) is active.
    pub fn metering(&self) -> bool {
        self.rate > 0.0
    }
}

/// Outcome of [`TenantGovernor::admit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Request may proceed; the caller must call [`TenantGovernor::release`] when it
    /// finishes.
    Admitted,
    /// Token bucket empty: answer 429 with this `Retry-After` (whole seconds,
    /// rounded up, at least 1).
    RateLimited {
        /// Seconds until one token refills.
        retry_after_s: u64,
    },
    /// In-flight quota reached: answer 429 with `Retry-After: 1`.
    QuotaExceeded,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
    in_flight: u32,
    /// Total requests admitted for this tenant (monotonic, survives refills).
    admitted: u64,
    /// Total requests rejected (rate or quota) for this tenant.
    rejected: u64,
    last_seen: Instant,
}

/// The per-tenant admission governor shared by both front ends.
///
/// One mutex over a small `HashMap` — admission is two float ops and a compare, far
/// off the request's critical path (which runs a scheduling sweep), so sharding the
/// map would be complexity without a measurable win.
#[derive(Debug)]
pub struct TenantGovernor {
    policy: TenantPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantGovernor {
    /// A governor applying `policy` to every tenant.
    pub fn new(policy: TenantPolicy) -> Self {
        TenantGovernor {
            policy,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }

    /// Normalises a raw `X-Fcpn-Tenant` header value into a bucket key.
    pub fn tenant_key(header: Option<&str>) -> &str {
        match header.map(str::trim) {
            Some(t) if !t.is_empty() && t.len() <= MAX_TENANT_KEY_LEN => t,
            _ => DEFAULT_TENANT,
        }
    }

    /// Decides whether a request from `tenant` may proceed right now.
    ///
    /// Counters are updated either way. When metering is disabled this always admits
    /// (and no `release` pairing is required, though calling it stays harmless).
    pub fn admit(&self, tenant: &str) -> Admission {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        if !buckets.contains_key(tenant) && buckets.len() >= self.policy.max_tenants {
            evict_stalest(&mut buckets);
        }
        let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| Bucket {
            tokens: self.policy.burst,
            refilled: now,
            in_flight: 0,
            admitted: 0,
            rejected: 0,
            last_seen: now,
        });
        bucket.last_seen = now;

        if !self.policy.metering() {
            bucket.admitted += 1;
            return Admission::Admitted;
        }

        // Refill lazily: tokens accrue at `rate` per second up to `burst`.
        let dt = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.policy.rate).min(self.policy.burst);
        bucket.refilled = now;

        if bucket.tokens < 1.0 {
            bucket.rejected += 1;
            let deficit = 1.0 - bucket.tokens;
            let retry_after_s = (deficit / self.policy.rate).ceil().max(1.0) as u64;
            return Admission::RateLimited { retry_after_s };
        }
        if self.policy.max_in_flight > 0 && bucket.in_flight >= self.policy.max_in_flight {
            bucket.rejected += 1;
            return Admission::QuotaExceeded;
        }
        bucket.tokens -= 1.0;
        bucket.in_flight += 1;
        bucket.admitted += 1;
        Admission::Admitted
    }

    /// Marks a previously admitted request as finished (frees its in-flight slot).
    pub fn release(&self, tenant: &str) {
        if !self.policy.metering() {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        if let Some(bucket) = buckets.get_mut(tenant) {
            bucket.in_flight = bucket.in_flight.saturating_sub(1);
        }
    }

    /// Per-tenant counters as a JSON object keyed by tenant (sorted for determinism):
    /// `{"acme": {"admitted": 10, "rejected": 2, "in_flight": 1}, ...}`.
    pub fn render_json(&self) -> Json {
        let buckets = self.buckets.lock().unwrap();
        let mut rows: Vec<(&String, &Bucket)> = buckets.iter().collect();
        rows.sort_by_key(|(name, _)| name.as_str());
        Json::obj(rows.into_iter().map(|(name, b)| {
            (
                name.as_str(),
                Json::obj([
                    ("admitted", Json::from(b.admitted as i64)),
                    ("rejected", Json::from(b.rejected as i64)),
                    ("in_flight", Json::from(i64::from(b.in_flight))),
                ]),
            )
        }))
    }
}

fn evict_stalest(buckets: &mut HashMap<String, Bucket>) {
    if let Some(stalest) = buckets
        .iter()
        .min_by_key(|(_, b)| b.last_seen)
        .map(|(name, _)| name.clone())
    {
        buckets.remove(&stalest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_metering_admits_everything() {
        let gov = TenantGovernor::new(TenantPolicy::default());
        for _ in 0..10_000 {
            assert_eq!(gov.admit("t"), Admission::Admitted);
        }
    }

    #[test]
    fn burst_then_rate_limited_with_sane_retry_after() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 1.0,
            burst: 3.0,
            ..TenantPolicy::default()
        });
        for i in 0..3 {
            assert_eq!(gov.admit("t"), Admission::Admitted, "burst request {i}");
        }
        match gov.admit("t") {
            Admission::RateLimited { retry_after_s } => {
                assert!((1..=2).contains(&retry_after_s), "{retry_after_s}");
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
    }

    #[test]
    fn tokens_refill_over_time() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 50.0,
            burst: 1.0,
            ..TenantPolicy::default()
        });
        assert_eq!(gov.admit("t"), Admission::Admitted);
        assert!(matches!(gov.admit("t"), Admission::RateLimited { .. }));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(gov.admit("t"), Admission::Admitted);
    }

    #[test]
    fn in_flight_quota_blocks_and_release_frees() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 1000.0,
            burst: 1000.0,
            max_in_flight: 2,
            ..TenantPolicy::default()
        });
        assert_eq!(gov.admit("t"), Admission::Admitted);
        assert_eq!(gov.admit("t"), Admission::Admitted);
        assert_eq!(gov.admit("t"), Admission::QuotaExceeded);
        gov.release("t");
        assert_eq!(gov.admit("t"), Admission::Admitted);
    }

    #[test]
    fn tenants_are_isolated() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 1.0,
            burst: 1.0,
            ..TenantPolicy::default()
        });
        assert_eq!(gov.admit("a"), Admission::Admitted);
        assert!(matches!(gov.admit("a"), Admission::RateLimited { .. }));
        // `a`'s exhaustion must not affect `b`.
        assert_eq!(gov.admit("b"), Admission::Admitted);
    }

    #[test]
    fn tenant_map_is_bounded() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 1.0,
            burst: 1.0,
            max_tenants: 8,
            ..TenantPolicy::default()
        });
        for i in 0..100 {
            gov.admit(&format!("tenant-{i}"));
        }
        assert!(gov.buckets.lock().unwrap().len() <= 8);
    }

    #[test]
    fn tenant_key_normalisation() {
        assert_eq!(TenantGovernor::tenant_key(None), DEFAULT_TENANT);
        assert_eq!(TenantGovernor::tenant_key(Some("")), DEFAULT_TENANT);
        assert_eq!(TenantGovernor::tenant_key(Some("  acme  ")), "acme");
        let long = "x".repeat(65);
        assert_eq!(TenantGovernor::tenant_key(Some(&long)), DEFAULT_TENANT);
    }

    #[test]
    fn counters_render_sorted_and_complete() {
        let gov = TenantGovernor::new(TenantPolicy {
            rate: 1.0,
            burst: 1.0,
            ..TenantPolicy::default()
        });
        gov.admit("beta");
        gov.admit("alpha");
        gov.admit("alpha"); // rejected: bucket of 1
        let text = gov.render_json().render();
        let alpha = text.find("alpha").unwrap();
        let beta = text.find("beta").unwrap();
        assert!(alpha < beta, "{text}");
        assert!(
            text.contains("\"rejected\":1") || text.contains("\"rejected\": 1"),
            "{text}"
        );
    }
}
