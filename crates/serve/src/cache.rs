//! The mutex-sharded, fingerprint-keyed result cache.
//!
//! Synthesis queries are expensive and repeat-heavy (the same net is scheduled again and
//! again as designers iterate), so the daemon memoises whole rendered responses keyed by
//! the 128-bit [`net_fingerprint`](fcpn_petri::net_fingerprint) of the request's net
//! folded together with the endpoint and every effective option. Sharding bounds lock
//! contention: a lookup locks one of [`ResultCache::shard_count`] independent mutexes,
//! so concurrent workers serving different nets rarely collide.
//!
//! Keys are used directly — no stored-signature verification like the scheduler's
//! component cache — so a 128-bit collision would serve the colliding entry's response.
//! With two independent 64-bit lanes the expected collision rate is ~2⁻¹²⁸ per pair of
//! distinct requests; the trade is documented in [`crate::json`]'s consumer, the
//! handlers.
//!
//! # Eviction
//!
//! Each shard tracks a per-entry `last_used` stamp from a shard-local logical clock and
//! a byte estimate of its resident bodies. When an insert pushes a shard past its entry
//! capacity **or** its byte budget, the least-recently-used entries are evicted one at a
//! time until both bounds hold again — no more wholesale clears, so a hot entry is never
//! collateral damage of an unrelated insert. [`ResultCache::evictions`] and
//! [`ResultCache::bytes`] expose the running totals for `/metrics`.
//!
//! # Persistence
//!
//! A cache built with [`ResultCache::with_persistence`] attaches one append-only
//! [`crate::persist`] log per shard. Inserts append under the shard lock (so log order
//! matches map order); recovery on startup reloads every intact record and truncates
//! torn or corrupt tails, making a `kill -9` mid-append lose at most the final records
//! while never serving wrong bytes. Logs compact automatically (rewrite-and-rename)
//! once they grow well past the shard's byte budget.

use crate::persist::{shard_log_path, RecoveryStats, ShardLog};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One memoised response: status plus the rendered (deterministic) JSON body, shared
/// so a hit hands the same allocation to the response writer.
#[derive(Debug)]
pub struct CachedResponse {
    /// HTTP status of the memoised response.
    pub status: u16,
    /// The rendered JSON body.
    pub body: Arc<String>,
}

/// Estimated resident overhead of one entry beyond its body bytes (key, stamps, map
/// slot). Only the ratio to the byte budget matters, so a round constant suffices.
const ENTRY_OVERHEAD: usize = 64;

/// A shard log is compacted once it exceeds this multiple of the shard's byte budget
/// (stale records from evicted or superseded entries are the difference).
const COMPACT_FACTOR: u64 = 4;

/// Compaction never triggers below this log size, so tiny caches don't churn.
const COMPACT_FLOOR: u64 = 64 << 10;

fn entry_cost(response: &CachedResponse) -> usize {
    response.body.len() + ENTRY_OVERHEAD
}

/// Shard-log files under `dir` whose index is at or beyond the current shard count —
/// leftovers from a run with more shards.
fn orphan_shard_logs(dir: &Path, shard_count: usize) -> io::Result<Vec<std::path::PathBuf>> {
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("shard-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        if index >= shard_count {
            orphans.push(entry.path());
        }
    }
    orphans.sort();
    Ok(orphans)
}

#[derive(Debug)]
struct Entry {
    response: Arc<CachedResponse>,
    last_used: u64,
}

/// The state behind one shard mutex: the map, its LRU clock, its byte estimate, and
/// (when persistence is on) its append-only log.
#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<u128, Entry>,
    clock: u64,
    bytes: usize,
    log: Option<ShardLog>,
}

/// A sharded map from 128-bit request fingerprints to rendered responses.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<CacheShard>>,
    shard_capacity: usize,
    shard_byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
    recovery: RecoveryStats,
}

/// Default total byte budget when the caller only bounds entry counts: generous enough
/// that entry capacity is normally the binding constraint.
const DEFAULT_TOTAL_BYTES: usize = 64 << 20;

impl ResultCache {
    /// A cache of `shards` independent mutexes holding at most `total_capacity` entries
    /// overall (each shard caps at `total_capacity / shards`, minimum 1), with a
    /// default total byte budget of 64 MiB.
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        Self::with_limits(shards, total_capacity, DEFAULT_TOTAL_BYTES)
    }

    /// A cache bounded by both entry count and resident bytes (evenly divided across
    /// shards; each shard keeps at least one entry regardless).
    pub fn with_limits(shards: usize, total_capacity: usize, total_bytes: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shard_capacity: (total_capacity / shards).max(1),
            shard_byte_budget: (total_bytes / shards).max(1),
            shards: (0..shards)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            recovery: RecoveryStats::default(),
        }
    }

    /// A bounded cache whose shards persist to append-only logs under `dir` (created
    /// if absent), warm-started from whatever intact records previous runs left there.
    ///
    /// Torn or corrupt log tails are truncated during recovery — see
    /// [`ResultCache::recovery_stats`] for what was reloaded and what was cut. Fails
    /// only on filesystem errors (permissions, full disk); *damaged* log contents are
    /// never an error.
    pub fn with_persistence(
        shards: usize,
        total_capacity: usize,
        total_bytes: usize,
        dir: &Path,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut cache = Self::with_limits(shards, total_capacity, total_bytes);
        let mut stats = RecoveryStats::default();
        let mut recovered = Vec::new();
        for (index, shard) in cache.shards.iter_mut().enumerate() {
            let (log, entries, shard_stats) = ShardLog::open(&shard_log_path(dir, index))?;
            stats.merge(shard_stats);
            shard.get_mut().expect("new mutex cannot be poisoned").log = Some(log);
            recovered.push((index, entries));
        }
        // A directory written with a *larger* shard count leaves orphan logs beyond
        // the current range; recover their entries too (re-appended into the right
        // live log below), then remove them so stale records cannot resurrect later.
        for path in orphan_shard_logs(dir, shards)? {
            let (log, entries, shard_stats) = ShardLog::open(&path)?;
            stats.merge(shard_stats);
            drop(log);
            let _ = std::fs::remove_file(&path);
            recovered.push((usize::MAX, entries));
        }
        cache.recovery = stats;
        // Re-route every recovered entry through the *current* shard function, so a
        // cache directory written with a different shard count still warms correctly.
        for (source, entries) in recovered {
            for e in entries {
                let response = Arc::new(CachedResponse {
                    status: e.status,
                    body: Arc::new(e.body),
                });
                cache.insert_inner(e.key, response, Some(source));
            }
        }
        Ok(cache)
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: u128) -> usize {
        ((key as u64) ^ ((key >> 64) as u64)) as usize % self.shards.len()
    }

    fn shard(&self, key: u128) -> (usize, MutexGuard<'_, CacheShard>) {
        let index = self.shard_index(key);
        // A poisoned mutex only means another worker panicked mid-insert; the map
        // itself is still structurally sound, and the daemon must keep serving.
        let guard = match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        (index, guard)
    }

    /// Looks a response up, counting the hit or miss and bumping its LRU stamp.
    pub fn get(&self, key: u128) -> Option<Arc<CachedResponse>> {
        let (_, mut shard) = self.shard(key);
        shard.clock += 1;
        let stamp = shard.clock;
        let found = shard.map.get_mut(&key).map(|entry| {
            entry.last_used = stamp;
            Arc::clone(&entry.response)
        });
        drop(shard);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a response (first insert wins on a racing double-compute — both computed
    /// the same body), evicting least-recently-used entries if the shard's entry or
    /// byte bound is exceeded, and appending to the shard's persistent log if one is
    /// attached.
    pub fn insert(&self, key: u128, response: Arc<CachedResponse>) {
        self.insert_inner(key, response, None);
    }

    /// Shared insert path. `already_logged_in` is `Some(source_shard)` during recovery:
    /// the record already lives in shard `source_shard`'s log, so it is only re-appended
    /// when the current shard function routes it elsewhere.
    fn insert_inner(
        &self,
        key: u128,
        response: Arc<CachedResponse>,
        already_logged_in: Option<usize>,
    ) {
        let (index, mut shard) = self.shard(key);
        if shard.map.contains_key(&key) {
            return;
        }
        let cost = entry_cost(&response);
        shard.clock += 1;
        let stamp = shard.clock;
        // Persist before the entry becomes visible; log I/O failures degrade the cache
        // to in-memory-only for that record rather than failing the request.
        if already_logged_in != Some(index) {
            if let Some(log) = shard.log.as_mut() {
                let _ = log.append(key, response.status, &response.body);
            }
        }
        shard.map.insert(
            key,
            Entry {
                response,
                last_used: stamp,
            },
        );
        shard.bytes += cost;
        self.bytes.fetch_add(cost as u64, Ordering::Relaxed);
        self.evict_over_budget(&mut shard);
        self.maybe_compact(&mut shard);
    }

    /// Evicts least-recently-used entries until the shard honours both its entry
    /// capacity and its byte budget (always keeping at least one entry, so a single
    /// oversized response is still cached rather than thrashing).
    fn evict_over_budget(&self, shard: &mut CacheShard) {
        while (shard.map.len() > self.shard_capacity || shard.bytes > self.shard_byte_budget)
            && shard.map.len() > 1
        {
            // O(shard entries) scan; shards are small (capacity / shard_count) and the
            // loop runs at most once per insert in steady state.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key)
                .expect("len > 1 guarantees a victim");
            if let Some(entry) = shard.map.remove(&victim) {
                let cost = entry_cost(&entry.response);
                shard.bytes -= cost.min(shard.bytes);
                self.bytes.fetch_sub(cost as u64, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Compacts the shard's log down to its live entries once stale records (from
    /// evictions and superseded inserts) dominate the file.
    fn maybe_compact(&self, shard: &mut CacheShard) {
        let threshold = COMPACT_FACTOR * (self.shard_byte_budget as u64).max(COMPACT_FLOOR);
        let CacheShard { map, log, .. } = shard;
        if let Some(log) = log.as_mut() {
            if log.bytes() > threshold {
                let live = map.iter().map(|(key, entry)| {
                    (*key, entry.response.status, entry.response.body.as_str())
                });
                let _ = log.compact(live);
            }
        }
    }

    /// Pressure relief: evicts least-recently-used entries until each shard holds at
    /// most half the bytes it did — the memory governor's "give the engines room"
    /// lever when a request cannot be admitted. Returns the bytes released. Hot
    /// entries survive (eviction is strictly LRU per shard); an already-light cache
    /// releases little and that is fine — the caller sheds the request either way.
    pub fn shed_half(&self) -> u64 {
        let mut released = 0u64;
        for mutex in &self.shards {
            let mut shard = match mutex.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if shard.map.is_empty() {
                continue;
            }
            // One O(n log n) sort instead of a min-scan per eviction: this runs while
            // holding the shard mutex under memory pressure, exactly when stalling
            // every request hashed to the shard would hurt most.
            let target = shard.bytes / 2;
            let mut order: Vec<(u64, u128)> = shard
                .map
                .iter()
                .map(|(key, entry)| (entry.last_used, *key))
                .collect();
            order.sort_unstable();
            for (_, key) in order {
                if shard.bytes <= target {
                    break;
                }
                if let Some(entry) = shard.map.remove(&key) {
                    let cost = entry_cost(&entry.response);
                    shard.bytes -= cost.min(shard.bytes);
                    released += cost as u64;
                    self.bytes.fetch_sub(cost as u64, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        released
    }

    /// Fsyncs every attached shard log (drain/shutdown path; routine appends are left
    /// to the OS). No-op without persistence. Returns the first I/O error, after
    /// attempting every shard.
    pub fn flush(&self) -> io::Result<()> {
        let mut first_err = None;
        for mutex in &self.shards {
            let mut shard = match mutex.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if let Some(log) = shard.log.as_mut() {
                if let Err(e) = log.flush() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Total entries across shards (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.map.len(),
                Err(poisoned) => poisoned.into_inner().map.len(),
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit counter.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss counter.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of entries evicted to honour the entry or byte bounds.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Estimated resident bytes of all cached bodies (plus fixed per-entry overhead).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// What startup recovery found in the persistent logs (all zeros without
    /// persistence): intact entries reloaded and torn/corrupt tails truncated.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn entry(body: &str) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            status: 200,
            body: Arc::new(body.to_string()),
        })
    }

    /// A scratch directory unique to this test, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "fcpn-cache-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(4, 64);
        assert!(cache.get(7).is_none());
        cache.insert(7, entry("a"));
        assert_eq!(*cache.get(7).unwrap().body, "a");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_bounds_hold_under_many_inserts() {
        let shards = 4;
        let total = 16;
        let cache = ResultCache::new(shards, total);
        for key in 0..10_000u128 {
            cache.insert(key.wrapping_mul(0x9E37_79B9), entry("x"));
            assert!(cache.len() <= shards * (total / shards));
        }
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn first_insert_wins() {
        let cache = ResultCache::new(1, 8);
        cache.insert(1, entry("first"));
        cache.insert(1, entry("second"));
        assert_eq!(*cache.get(1).unwrap().body, "first");
    }

    #[test]
    fn eviction_removes_the_least_recently_used_entry() {
        let cache = ResultCache::new(1, 3);
        cache.insert(1, entry("one"));
        cache.insert(2, entry("two"));
        cache.insert(3, entry("three"));
        // Touch 1 and 3, leaving 2 as the LRU victim of the next insert.
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        cache.insert(4, entry("four"));
        assert!(cache.get(2).is_none(), "LRU entry is the one evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn byte_budget_evicts_even_below_entry_capacity() {
        // Entry capacity 64, but a budget that holds only ~2 of these bodies.
        let body = "x".repeat(512);
        let cache = ResultCache::with_limits(1, 64, 2 * (body.len() + ENTRY_OVERHEAD));
        for key in 0..10u128 {
            cache.insert(key, entry(&body));
        }
        assert!(cache.len() <= 2, "byte budget caps residency at 2 entries");
        assert!(cache.evictions() >= 8);
        assert!(cache.bytes() <= 2 * (body.len() + ENTRY_OVERHEAD) as u64);
    }

    #[test]
    fn shed_half_halves_bytes_and_keeps_the_hottest_entries() {
        let cache = ResultCache::with_limits(1, 64, 1 << 20);
        let body = "x".repeat(256);
        for key in 0..8u128 {
            cache.insert(key, entry(&body));
        }
        // Touch the upper half so the lower half is the LRU shed victim set.
        for key in 4..8u128 {
            assert!(cache.get(key).is_some());
        }
        let before = cache.bytes();
        let released = cache.shed_half();
        assert!(released > 0);
        assert_eq!(cache.bytes(), before - released);
        assert!(
            cache.bytes() <= before / 2,
            "shed reaches the half-byte target"
        );
        for key in 4..8u128 {
            assert!(
                cache.get(key).is_some(),
                "recently used entry {key} survives"
            );
        }
        for key in 0..4u128 {
            assert!(cache.get(key).is_none(), "LRU entry {key} is shed first");
        }
        // An empty cache sheds nothing and does not wrap the gauges.
        let empty = ResultCache::new(2, 8);
        assert_eq!(empty.shed_half(), 0);
        assert_eq!(empty.bytes(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ResultCache::new(8, 256));
        std::thread::scope(|scope| {
            for worker in 0..8u128 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u128 {
                        let key = (worker << 64) | i;
                        cache.insert(key, entry("b"));
                        assert!(cache.get(key).is_some() || cache.len() <= 256);
                    }
                });
            }
        });
    }

    #[test]
    fn persistent_cache_round_trips_across_reopen() {
        let dir = TempDir::new("roundtrip");
        {
            let cache = ResultCache::with_persistence(4, 64, 1 << 20, &dir.0).unwrap();
            cache.insert(7, entry("seven"));
            cache.insert(1 << 100, entry("big-key"));
            cache.flush().unwrap();
        }
        let cache = ResultCache::with_persistence(4, 64, 1 << 20, &dir.0).unwrap();
        assert_eq!(cache.recovery_stats().recovered_entries, 2);
        assert_eq!(cache.recovery_stats().torn_tail_truncations, 0);
        assert_eq!(*cache.get(7).unwrap().body, "seven");
        assert_eq!(*cache.get(1 << 100).unwrap().body, "big-key");
    }

    #[test]
    fn shard_count_change_still_warms_every_entry() {
        let dir = TempDir::new("reshard");
        {
            let cache = ResultCache::with_persistence(8, 64, 1 << 20, &dir.0).unwrap();
            for key in 0..20u128 {
                cache.insert(key * 31, entry("v"));
            }
            cache.flush().unwrap();
        }
        // Reopen with a different shard count: every entry must be re-routed.
        let cache = ResultCache::with_persistence(3, 64, 1 << 20, &dir.0).unwrap();
        assert_eq!(cache.recovery_stats().recovered_entries, 20);
        for key in 0..20u128 {
            assert!(cache.get(key * 31).is_some(), "key {key} lost in re-shard");
        }
    }

    #[test]
    fn torn_log_tail_is_survivable() {
        let dir = TempDir::new("torn");
        {
            let cache = ResultCache::with_persistence(1, 64, 1 << 20, &dir.0).unwrap();
            cache.insert(1, entry("keep"));
            cache.insert(2, entry("tear-me"));
            cache.flush().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the single shard's log.
        let log = crate::persist::shard_log_path(&dir.0, 0);
        let data = std::fs::read(&log).unwrap();
        std::fs::write(&log, &data[..data.len() - 4]).unwrap();
        let cache = ResultCache::with_persistence(1, 64, 1 << 20, &dir.0).unwrap();
        assert_eq!(cache.recovery_stats().torn_tail_truncations, 1);
        assert_eq!(*cache.get(1).unwrap().body, "keep");
        assert!(cache.get(2).is_none(), "torn entry is dropped, not misread");
    }

    #[test]
    fn compaction_keeps_log_bounded_under_churn() {
        let dir = TempDir::new("compact");
        let body = "y".repeat(1024);
        {
            // Tiny byte budget so churned entries accumulate stale records fast.
            let cache = ResultCache::with_persistence(1, 4, 4 * 1100, &dir.0).unwrap();
            for key in 0..2_000u128 {
                cache.insert(key, entry(&body));
            }
            cache.flush().unwrap();
        }
        let log = crate::persist::shard_log_path(&dir.0, 0);
        let size = std::fs::metadata(&log).unwrap().len();
        // Without compaction the log would be ~2000 × 1KiB ≈ 2 MiB; the compaction
        // threshold (COMPACT_FACTOR × max(budget, COMPACT_FLOOR)) bounds it far below.
        assert!(size < 600 << 10, "log grew unbounded: {size} bytes");
        let cache = ResultCache::with_persistence(1, 4, 4 * 1100, &dir.0).unwrap();
        assert_eq!(cache.recovery_stats().torn_tail_truncations, 0);
        assert!(!cache.is_empty());
    }
}
