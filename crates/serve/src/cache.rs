//! The mutex-sharded, fingerprint-keyed result cache.
//!
//! Synthesis queries are expensive and repeat-heavy (the same net is scheduled again and
//! again as designers iterate), so the daemon memoises whole rendered responses keyed by
//! the 128-bit [`net_fingerprint`](fcpn_petri::net_fingerprint) of the request's net
//! folded together with the endpoint and every effective option. Sharding bounds lock
//! contention: a lookup locks one of [`ResultCache::shard_count`] independent mutexes,
//! so concurrent workers serving different nets rarely collide.
//!
//! Keys are used directly — no stored-signature verification like the scheduler's
//! component cache — so a 128-bit collision would serve the colliding entry's response.
//! With two independent 64-bit lanes the expected collision rate is ~2⁻¹²⁸ per pair of
//! distinct requests; the trade is documented in [`crate::json`]'s consumer, the
//! handlers.
//!
//! Eviction is coarse: when a shard reaches its capacity it is cleared wholesale. The
//! cache never grows past `shard_count × shard_capacity` entries, each worker sees at
//! most one clear per `shard_capacity` inserts, and a cleared shard simply refills from
//! subsequent traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One memoised response: status plus the rendered (deterministic) JSON body, shared
/// so a hit hands the same allocation to the response writer.
#[derive(Debug)]
pub struct CachedResponse {
    /// HTTP status of the memoised response.
    pub status: u16,
    /// The rendered JSON body.
    pub body: Arc<String>,
}

/// A sharded map from 128-bit request fingerprints to rendered responses.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<u128, Arc<CachedResponse>>>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache of `shards` independent mutexes holding at most `total_capacity` entries
    /// overall (each shard caps at `total_capacity / shards`, minimum 1).
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shard_capacity: (total_capacity / shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u128) -> MutexGuard<'_, HashMap<u128, Arc<CachedResponse>>> {
        let index = ((key as u64) ^ ((key >> 64) as u64)) as usize % self.shards.len();
        // A poisoned mutex only means another worker panicked mid-insert; the map
        // itself is still structurally sound, and the daemon must keep serving.
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks a response up, counting the hit or miss.
    pub fn get(&self, key: u128) -> Option<Arc<CachedResponse>> {
        let found = self.shard(key).get(&key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a response (first insert wins on a racing double-compute — both computed
    /// the same body).
    pub fn insert(&self, key: u128, response: Arc<CachedResponse>) {
        let mut shard = self.shard(key);
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.entry(key).or_insert(response);
    }

    /// Total entries across shards (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(guard) => guard.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit counter.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss counter.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(body: &str) -> Arc<CachedResponse> {
        Arc::new(CachedResponse {
            status: 200,
            body: Arc::new(body.to_string()),
        })
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ResultCache::new(4, 64);
        assert!(cache.get(7).is_none());
        cache.insert(7, entry("a"));
        assert_eq!(*cache.get(7).unwrap().body, "a");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_bounds_hold_under_many_inserts() {
        let shards = 4;
        let total = 16;
        let cache = ResultCache::new(shards, total);
        for key in 0..10_000u128 {
            cache.insert(key.wrapping_mul(0x9E37_79B9), entry("x"));
            assert!(cache.len() <= shards * (total / shards));
        }
    }

    #[test]
    fn first_insert_wins() {
        let cache = ResultCache::new(1, 8);
        cache.insert(1, entry("first"));
        cache.insert(1, entry("second"));
        assert_eq!(*cache.get(1).unwrap().body, "first");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ResultCache::new(8, 256));
        std::thread::scope(|scope| {
            for worker in 0..8u128 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500u128 {
                        let key = (worker << 64) | i;
                        cache.insert(key, entry("b"));
                        assert!(cache.get(key).is_some() || cache.len() <= 256);
                    }
                });
            }
        });
    }
}
