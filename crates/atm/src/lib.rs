//! # fcpn-atm — the ATM server case study and the Table I harness
//!
//! The experimental section of *Synthesis of Embedded Software Using Free-Choice Petri
//! Nets* (DAC 1999) applies the full flow to an ATM server for virtual private networks:
//! message discarding (MSD) plus weighted-fair-queueing (WFQ) bandwidth control, driven
//! by an irregular `Cell` interrupt and a periodic `Tick`. This crate reconstructs that
//! model ([`AtmModel`]), generates the 50-cell testbench ([`generate_workload`]),
//! resolves the data-dependent choices with a traffic policy ([`AtmChoicePolicy`]), and
//! reruns the paper's Table I comparison ([`run_table1`]) between the quasi-statically
//! scheduled implementation (2 tasks) and a functional task partitioning (5 tasks).
//! The functional baseline's token game runs on the `fcpn_petri::statespace`
//! firing fast path; [`run_table1_naive`] replays the experiment on the retained seed
//! simulator, and tests pin the two to identical tables.
//!
//! ```no_run
//! use fcpn_atm::{run_table1, AtmConfig, AtmModel, Table1Config};
//!
//! # fn main() -> Result<(), fcpn_atm::AtmError> {
//! let model = AtmModel::build(AtmConfig::paper())?;
//! let table = run_table1(&model, &Table1Config::default())?;
//! println!("{table}");
//! assert!(table.qss_wins());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cells;
mod error;
mod functional;
mod model;
mod table1;

pub use cells::{generate_workload, AtmChoicePolicy, TrafficConfig};
pub use error::{AtmError, Result};
pub use functional::{boundary_places, emit_functional_c, functional_partition};
pub use model::{AtmConfig, AtmModel, Module, MODULES};
pub use table1::{run_table1, run_table1_naive, Table1, Table1Config, Table1Row};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtmModel>();
        assert_send_sync::<Table1>();
        assert_send_sync::<AtmError>();
        assert_send_sync::<AtmChoicePolicy>();
    }
}
