//! The ATM server FCPN model (Figure 8 of the paper).
//!
//! The paper evaluates the approach on an ATM server for virtual private networks
//! [Filippi et al. 98] whose exact net was published only in the companion technical
//! report; we reconstruct a model with the same modules and the same structural
//! character: two inputs with independent rates (`cell`, an irregular interrupt, and
//! `tick`, the periodic cell-slot event), a message-discarding stage (MSD), a per-VPN
//! buffer stage, a cell-extraction stage driven by the tick, and a WFQ scheduling stage
//! activated from both sides through a merge place. Several transitions emit a pair of
//! parallel places (control token + data value travelling together), which is how the
//! reconstruction reaches the statistics the paper quotes — 49 transitions, 41 places and
//! 11 free choices for [`AtmConfig::paper`].

use crate::Result;
use fcpn_petri::{NetBuilder, PetriNet, PlaceId, TransitionId};

/// Which functional module of Figure 8 a transition belongs to (used by the functional
/// task-partitioning baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// Message discarding (congestion check, EPD/PPD decisions).
    Msd,
    /// Per-VPN buffering and threshold accounting.
    Buffer,
    /// Cell extraction on every cell slot.
    CellExtract,
    /// Weighted-fair-queueing emission-time computation.
    Wfq,
    /// Arbiter / counter / statistics bookkeeping.
    Arbiter,
}

/// All modules, in the order the paper's block diagram lists them.
pub const MODULES: [Module; 5] = [
    Module::Msd,
    Module::Buffer,
    Module::CellExtract,
    Module::Wfq,
    Module::Arbiter,
];

/// Configuration of the reconstructed ATM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtmConfig {
    /// Number of per-VPN queues (the classify and dequeue choices are this wide).
    pub queues: usize,
}

impl AtmConfig {
    /// The configuration whose structural statistics match the model quoted in the paper
    /// (49 transitions, 41 places, 11 choices).
    pub fn paper() -> Self {
        AtmConfig { queues: 4 }
    }

    /// A smaller configuration (two queues) for fast unit tests.
    pub fn small() -> Self {
        AtmConfig { queues: 2 }
    }
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig::paper()
    }
}

/// The ATM server model: the net plus the handles the harness needs.
#[derive(Debug, Clone)]
pub struct AtmModel {
    /// The Free-Choice net.
    pub net: PetriNet,
    /// The `Cell` input (irregular interrupt).
    pub cell: TransitionId,
    /// The `Tick` input (periodic cell-slot event).
    pub tick: TransitionId,
    /// Module membership of every transition, indexed by transition.
    pub modules: Vec<Module>,
    /// The choice places, with a description of the data each one inspects.
    pub choices: Vec<(PlaceId, &'static str)>,
    /// Configuration used to build the model.
    pub config: AtmConfig,
}

impl AtmModel {
    /// Builds the ATM server model for `config`.
    ///
    /// # Errors
    ///
    /// Propagates builder errors; the construction itself is deterministic and all arcs
    /// are unit-weight, so errors indicate an internal inconsistency.
    pub fn build(config: AtmConfig) -> Result<AtmModel> {
        let n = config.queues.max(1);
        let mut b = NetBuilder::new("atm-server");
        let mut modules: Vec<(TransitionId, Module)> = Vec::new();
        let mut choices: Vec<(PlaceId, &'static str)> = Vec::new();
        let mut transition = |b: &mut NetBuilder, name: String, module: Module| {
            let t = b.transition(name);
            modules.push((t, module));
            t
        };

        // ----- Cell path (MSD + BUFFER) --------------------------------------------
        let cell = transition(&mut b, "cell".into(), Module::Msd);
        let p_cell_in = b.place("p_cell_in", 0);
        let p_cell_meta = b.place("p_cell_meta", 0);
        b.arc_t_p(cell, p_cell_in, 1)?;
        b.arc_t_p(cell, p_cell_meta, 1)?;

        let msd_check = transition(&mut b, "msd_check".into(), Module::Msd);
        b.arc_p_t(p_cell_in, msd_check, 1)?;
        b.arc_p_t(p_cell_meta, msd_check, 1)?;
        let p_msd_state = b.place("p_msd_state", 0);
        b.arc_t_p(msd_check, p_msd_state, 1)?;
        choices.push((p_msd_state, "node congested?"));

        // Not congested -> accept and classify.
        let not_congested = transition(&mut b, "not_congested".into(), Module::Msd);
        b.arc_p_t(p_msd_state, not_congested, 1)?;
        let p_accept = b.place("p_accept", 0);
        let p_accept_meta = b.place("p_accept_meta", 0);
        b.arc_t_p(not_congested, p_accept, 1)?;
        b.arc_t_p(not_congested, p_accept_meta, 1)?;

        // Congested -> EPD/PPD decision.
        let congested = transition(&mut b, "congested".into(), Module::Msd);
        b.arc_p_t(p_msd_state, congested, 1)?;
        let p_epd = b.place("p_epd", 0);
        b.arc_t_p(congested, p_epd, 1)?;
        choices.push((p_epd, "start of message?"));
        let epd_start = transition(&mut b, "epd_start".into(), Module::Msd);
        let epd_mid = transition(&mut b, "epd_mid".into(), Module::Msd);
        b.arc_p_t(p_epd, epd_start, 1)?;
        b.arc_p_t(p_epd, epd_mid, 1)?;
        let p_discard_msg = b.place("p_discard_msg", 0);
        let p_discard_cell = b.place("p_discard_cell", 0);
        b.arc_t_p(epd_start, p_discard_msg, 1)?;
        b.arc_t_p(epd_mid, p_discard_cell, 1)?;
        let discard_message = transition(&mut b, "discard_message".into(), Module::Msd);
        let discard_cell = transition(&mut b, "discard_cell".into(), Module::Msd);
        b.arc_p_t(p_discard_msg, discard_message, 1)?;
        b.arc_p_t(p_discard_cell, discard_cell, 1)?;
        let p_discard_log = b.place("p_discard_log", 0);
        b.arc_t_p(discard_message, p_discard_log, 1)?;
        b.arc_t_p(discard_cell, p_discard_log, 1)?;
        let msd_notify = transition(&mut b, "msd_notify".into(), Module::Arbiter);
        b.arc_p_t(p_discard_log, msd_notify, 1)?;

        // Classification into one of the per-VPN queues.
        let classify = transition(&mut b, "classify".into(), Module::Buffer);
        b.arc_p_t(p_accept, classify, 1)?;
        b.arc_p_t(p_accept_meta, classify, 1)?;
        let p_classify = b.place("p_classify", 0);
        b.arc_t_p(classify, p_classify, 1)?;
        choices.push((p_classify, "destination VPN queue"));

        // The WFQ request merge place: fed by every accepted cell and by the extractor.
        let p_wfq_req = b.place("p_wfq_req", 0);

        for i in 0..n {
            let enq = transition(&mut b, format!("enq_q{i}"), Module::Buffer);
            b.arc_p_t(p_classify, enq, 1)?;
            let p_enq = b.place(format!("p_enq_q{i}"), 0);
            b.arc_t_p(enq, p_enq, 1)?;
            let check = transition(&mut b, format!("check_threshold_q{i}"), Module::Buffer);
            b.arc_p_t(p_enq, check, 1)?;
            let p_thresh = b.place(format!("p_thresh_q{i}"), 0);
            b.arc_t_p(check, p_thresh, 1)?;
            choices.push((p_thresh, "queue occupancy below threshold?"));
            let below = transition(&mut b, format!("below_threshold_q{i}"), Module::Buffer);
            let above = transition(&mut b, format!("above_threshold_q{i}"), Module::Buffer);
            b.arc_p_t(p_thresh, below, 1)?;
            b.arc_p_t(p_thresh, above, 1)?;
            // Either way the accepted cell requests a WFQ emission-time computation.
            b.arc_t_p(below, p_wfq_req, 1)?;
            b.arc_t_p(above, p_wfq_req, 1)?;
        }

        // ----- Shared WFQ scheduling module -----------------------------------------
        let wfq_compute = transition(&mut b, "wfq_compute".into(), Module::Wfq);
        b.arc_p_t(p_wfq_req, wfq_compute, 1)?;
        let p_wfq_mode = b.place("p_wfq_mode", 0);
        b.arc_t_p(wfq_compute, p_wfq_mode, 1)?;
        choices.push((p_wfq_mode, "incremental or full recomputation?"));
        let wfq_fast = transition(&mut b, "wfq_incremental".into(), Module::Wfq);
        let wfq_full = transition(&mut b, "wfq_full".into(), Module::Wfq);
        b.arc_p_t(p_wfq_mode, wfq_fast, 1)?;
        b.arc_p_t(p_wfq_mode, wfq_full, 1)?;
        let p_wfq_ready = b.place("p_wfq_ready", 0);
        let p_wfq_ready_meta = b.place("p_wfq_ready_meta", 0);
        b.arc_t_p(wfq_fast, p_wfq_ready, 1)?;
        b.arc_t_p(wfq_fast, p_wfq_ready_meta, 1)?;
        b.arc_t_p(wfq_full, p_wfq_ready, 1)?;
        b.arc_t_p(wfq_full, p_wfq_ready_meta, 1)?;
        let wfq_commit = transition(&mut b, "wfq_commit".into(), Module::Wfq);
        b.arc_p_t(p_wfq_ready, wfq_commit, 1)?;
        b.arc_p_t(p_wfq_ready_meta, wfq_commit, 1)?;
        let p_wfq_done = b.place("p_wfq_done", 0);
        let p_wfq_stats = b.place("p_wfq_stats", 0);
        b.arc_t_p(wfq_commit, p_wfq_done, 1)?;
        b.arc_t_p(wfq_commit, p_wfq_stats, 1)?;
        let wfq_ack = transition(&mut b, "wfq_ack".into(), Module::Wfq);
        b.arc_p_t(p_wfq_done, wfq_ack, 1)?;
        b.arc_p_t(p_wfq_stats, wfq_ack, 1)?;

        // ----- Tick path (CELL EXTRACT + ARBITER/COUNTER) ---------------------------
        let tick = transition(&mut b, "tick".into(), Module::CellExtract);
        let p_tick_in = b.place("p_tick_in", 0);
        let p_slot_meta = b.place("p_slot_meta", 0);
        let p_counter_in = b.place("p_counter_in", 0);
        b.arc_t_p(tick, p_tick_in, 1)?;
        b.arc_t_p(tick, p_slot_meta, 1)?;
        b.arc_t_p(tick, p_counter_in, 1)?;

        let counter_update = transition(&mut b, "counter_update".into(), Module::Arbiter);
        b.arc_p_t(p_counter_in, counter_update, 1)?;
        let p_counter_done = b.place("p_counter_done", 0);
        let p_counter_log = b.place("p_counter_log", 0);
        b.arc_t_p(counter_update, p_counter_done, 1)?;
        b.arc_t_p(counter_update, p_counter_log, 1)?;
        let arbiter_ack = transition(&mut b, "arbiter_ack".into(), Module::Arbiter);
        b.arc_p_t(p_counter_done, arbiter_ack, 1)?;
        b.arc_p_t(p_counter_log, arbiter_ack, 1)?;

        let extract_check = transition(&mut b, "extract_check".into(), Module::CellExtract);
        b.arc_p_t(p_tick_in, extract_check, 1)?;
        b.arc_p_t(p_slot_meta, extract_check, 1)?;
        let p_buffer_state = b.place("p_buffer_state", 0);
        b.arc_t_p(extract_check, p_buffer_state, 1)?;
        choices.push((p_buffer_state, "buffer empty?"));
        let buffer_empty = transition(&mut b, "buffer_empty".into(), Module::CellExtract);
        let buffer_nonempty = transition(&mut b, "buffer_nonempty".into(), Module::CellExtract);
        b.arc_p_t(p_buffer_state, buffer_empty, 1)?;
        b.arc_p_t(p_buffer_state, buffer_nonempty, 1)?;
        let p_idle = b.place("p_idle", 0);
        b.arc_t_p(buffer_empty, p_idle, 1)?;
        let idle_ack = transition(&mut b, "idle_ack".into(), Module::CellExtract);
        b.arc_p_t(p_idle, idle_ack, 1)?;

        let p_select = b.place("p_select", 0);
        let p_select_meta = b.place("p_select_meta", 0);
        b.arc_t_p(buffer_nonempty, p_select, 1)?;
        b.arc_t_p(buffer_nonempty, p_select_meta, 1)?;
        let select_queue = transition(&mut b, "select_queue".into(), Module::CellExtract);
        b.arc_p_t(p_select, select_queue, 1)?;
        b.arc_p_t(p_select_meta, select_queue, 1)?;
        let p_queue_choice = b.place("p_queue_choice", 0);
        b.arc_t_p(select_queue, p_queue_choice, 1)?;
        choices.push((p_queue_choice, "which VPN queue emits next"));

        let p_emit_req = b.place("p_emit_req", 0);
        for i in 0..n {
            let deq = transition(&mut b, format!("deq_q{i}"), Module::CellExtract);
            b.arc_p_t(p_queue_choice, deq, 1)?;
            b.arc_t_p(deq, p_emit_req, 1)?;
        }

        let emit_cell = transition(&mut b, "emit_cell".into(), Module::CellExtract);
        b.arc_p_t(p_emit_req, emit_cell, 1)?;
        let p_emit_state = b.place("p_emit_state", 0);
        let p_extract_wfq = b.place("p_extract_wfq", 0);
        let p_emit_log = b.place("p_emit_log", 0);
        b.arc_t_p(emit_cell, p_emit_state, 1)?;
        b.arc_t_p(emit_cell, p_extract_wfq, 1)?;
        b.arc_t_p(emit_cell, p_emit_log, 1)?;
        choices.push((p_emit_state, "last cell of the message?"));
        // The extractor also requests a WFQ update (shared module, merge into p_wfq_req).
        let extract_wfq_update =
            transition(&mut b, "extract_wfq_update".into(), Module::CellExtract);
        b.arc_p_t(p_extract_wfq, extract_wfq_update, 1)?;
        b.arc_t_p(extract_wfq_update, p_wfq_req, 1)?;

        let end_of_message = transition(&mut b, "end_of_message".into(), Module::CellExtract);
        let mid_message = transition(&mut b, "mid_message".into(), Module::CellExtract);
        b.arc_p_t(p_emit_state, end_of_message, 1)?;
        b.arc_p_t(p_emit_state, mid_message, 1)?;
        let p_emit_done = b.place("p_emit_done", 0);
        b.arc_t_p(end_of_message, p_emit_done, 1)?;
        b.arc_t_p(mid_message, p_emit_done, 1)?;
        let update_stats = transition(&mut b, "update_stats".into(), Module::Arbiter);
        b.arc_p_t(p_emit_done, update_stats, 1)?;
        b.arc_p_t(p_emit_log, update_stats, 1)?;
        let p_stats = b.place("p_stats", 0);
        let p_stats_meta = b.place("p_stats_meta", 0);
        b.arc_t_p(update_stats, p_stats, 1)?;
        b.arc_t_p(update_stats, p_stats_meta, 1)?;
        let stats_ack = transition(&mut b, "stats_ack".into(), Module::Arbiter);
        b.arc_p_t(p_stats, stats_ack, 1)?;
        b.arc_p_t(p_stats_meta, stats_ack, 1)?;

        let net = b.build()?;
        let mut module_by_index = vec![Module::Msd; net.transition_count()];
        for (t, module) in modules {
            module_by_index[t.index()] = module;
        }
        Ok(AtmModel {
            net,
            cell,
            tick,
            modules: module_by_index,
            choices,
            config,
        })
    }

    /// The module a transition belongs to.
    pub fn module_of(&self, transition: TransitionId) -> Module {
        self.modules[transition.index()]
    }

    /// All transitions of a module, in index order.
    pub fn module_transitions(&self, module: Module) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.modules[t.index()] == module)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_qss::{quasi_static_schedule, QssOptions};

    #[test]
    fn paper_configuration_matches_quoted_statistics() {
        let model = AtmModel::build(AtmConfig::paper()).unwrap();
        let stats = model.net.stats();
        // The paper: "a FCPN containing 49 transitions and 41 places, of which 11
        // non-deterministic choices".
        assert_eq!(stats.transitions, 49);
        assert_eq!(stats.places, 41);
        assert_eq!(stats.choices, 11);
        assert_eq!(model.choices.len(), 11);
        assert!(model.net.is_free_choice());
        // Two inputs with independent rate: Cell and Tick.
        assert_eq!(model.net.source_transitions(), vec![model.cell, model.tick]);
    }

    #[test]
    fn small_configuration_is_free_choice_and_schedulable() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        assert!(model.net.is_free_choice());
        let outcome = quasi_static_schedule(&model.net, &QssOptions::default()).unwrap();
        assert!(outcome.is_schedulable());
    }

    #[test]
    fn every_transition_has_a_module() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let all: usize = MODULES
            .iter()
            .map(|&m| model.module_transitions(m).len())
            .sum();
        assert_eq!(all, model.net.transition_count());
        assert_eq!(model.module_of(model.cell), Module::Msd);
        assert_eq!(model.module_of(model.tick), Module::CellExtract);
    }

    #[test]
    fn queue_width_scales_structure() {
        let small = AtmModel::build(AtmConfig { queues: 2 }).unwrap();
        let large = AtmModel::build(AtmConfig { queues: 6 }).unwrap();
        assert!(large.net.transition_count() > small.net.transition_count());
        // One threshold choice per additional queue.
        assert_eq!(
            large.net.stats().choices,
            small.net.stats().choices + (6 - 2)
        );
    }
}
