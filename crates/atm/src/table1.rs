//! The Table I harness: QSS versus functional task partitioning on the ATM server.
//!
//! The paper's Table I reports, for a testbench of 50 ATM cells:
//!
//! | Sw implementation | QSS      | Functional task partitioning |
//! |-------------------|----------|------------------------------|
//! | Number of tasks   | 2        | 5                            |
//! | Lines of C code   | 1664     | 2187                         |
//! | Clock cycles      | 197 526  | 249 726                      |
//!
//! The absolute numbers depend on the authors' processor and hand-written module code; the
//! harness reproduces the *shape*: the QSS implementation has fewer tasks, less code and
//! fewer cycles because it pays task-activation overhead once per input event instead of
//! once per module crossing.

use crate::{
    emit_functional_c, functional_partition, generate_workload, AtmChoicePolicy, AtmError,
    AtmModel, Result, TrafficConfig,
};
use fcpn_codegen::{emit_c, synthesize, CEmitOptions, CodeMetrics, SynthesisOptions};
use fcpn_qss::{quasi_static_schedule, QssOptions, QssOutcome};
use fcpn_rtos::{
    simulate_functional_partition, simulate_functional_partition_naive, simulate_program,
    CostModel, SimReport,
};
use std::fmt;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Implementation name ("QSS" or "Functional task partitioning").
    pub implementation: String,
    /// Number of RTOS tasks.
    pub tasks: usize,
    /// Non-blank lines of the generated C code.
    pub lines_of_c: usize,
    /// Clock cycles to process the whole testbench on the simulated processor.
    pub clock_cycles: u64,
    /// Number of task activations paid for (not in the paper's table, but the mechanism
    /// behind the cycle difference).
    pub activations: u64,
}

/// The full Table I reproduction, plus the raw simulation reports.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The QSS implementation row.
    pub qss: Table1Row,
    /// The functional-partitioning baseline row.
    pub functional: Table1Row,
    /// Number of finite complete cycles in the valid schedule (the paper reports 120 for
    /// its hand-built model).
    pub schedule_cycles: usize,
    /// Raw simulation report of the QSS run.
    pub qss_report: SimReport,
    /// Raw simulation report of the functional run.
    pub functional_report: SimReport,
}

impl Table1 {
    /// Returns `true` if the reproduction has the same shape as the paper's table: QSS
    /// wins on all three reported metrics.
    pub fn qss_wins(&self) -> bool {
        self.qss.tasks < self.functional.tasks
            && self.qss.lines_of_c < self.functional.lines_of_c
            && self.qss.clock_cycles < self.functional.clock_cycles
    }

    /// Cycle-count ratio (functional / QSS); the paper's is ≈ 1.26.
    pub fn cycle_ratio(&self) -> f64 {
        self.functional.clock_cycles as f64 / self.qss.clock_cycles.max(1) as f64
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>10} {:>30}",
            "Sw implementation", "QSS", "Functional task partitioning"
        )?;
        writeln!(
            f,
            "{:<22} {:>10} {:>30}",
            "Number of tasks", self.qss.tasks, self.functional.tasks
        )?;
        writeln!(
            f,
            "{:<22} {:>10} {:>30}",
            "Lines of C code", self.qss.lines_of_c, self.functional.lines_of_c
        )?;
        writeln!(
            f,
            "{:<22} {:>10} {:>30}",
            "Clock cycles", self.qss.clock_cycles, self.functional.clock_cycles
        )
    }
}

/// Experiment parameters for the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Config {
    /// Traffic statistics (defaults to the paper's 50-cell testbench).
    pub traffic: TrafficConfig,
    /// Processor cost model.
    pub cost: CostModel,
    /// Random seed for workload generation and data-dependent choices.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            traffic: TrafficConfig::paper(),
            cost: CostModel::default(),
            seed: 1999,
        }
    }
}

/// Runs the complete Table I experiment on `model`.
///
/// The functional-baseline token game runs on the
/// [`FiringSession`](fcpn_petri::statespace::FiringSession) fast path
/// ([`simulate_functional_partition`]); [`run_table1_naive`] replays the same experiment
/// on the retained seed simulator and tests pin the two tables to identical results, so
/// the fast path never changes what Table I reports — only how fast it is produced
/// (`table1` in `BENCH_statespace.json` records the measured speedup).
///
/// # Errors
///
/// Returns [`AtmError::NotSchedulable`] if the model rejects quasi-static scheduling
/// (which would indicate a modelling regression), and propagates synthesis or simulation
/// failures.
pub fn run_table1(model: &AtmModel, config: &Table1Config) -> Result<Table1> {
    run_table1_impl(model, config, false)
}

/// [`run_table1`] on the seed marking-by-marking functional simulator
/// ([`simulate_functional_partition_naive`]) — the reference the fast path is pinned
/// against, kept public so benchmarks can measure the gap end to end.
///
/// # Errors
///
/// Same as [`run_table1`].
pub fn run_table1_naive(model: &AtmModel, config: &Table1Config) -> Result<Table1> {
    run_table1_impl(model, config, true)
}

fn run_table1_impl(model: &AtmModel, config: &Table1Config, naive: bool) -> Result<Table1> {
    // --- QSS flow: schedule -> synthesise tasks -> emit C -> simulate. ---
    let outcome = quasi_static_schedule(&model.net, &QssOptions::default())?;
    let schedule = match outcome {
        QssOutcome::Schedulable(schedule) => schedule,
        QssOutcome::NotSchedulable(report) => {
            return Err(AtmError::NotSchedulable(report.to_string()))
        }
    };
    let schedule_cycles = schedule.cycle_count();
    let program = synthesize(&model.net, &schedule, SynthesisOptions::default())?;
    let metrics = CodeMetrics::of(&program, &model.net);
    let qss_c = emit_c(&program, &model.net, CEmitOptions::default());
    debug_assert!(!qss_c.is_empty());

    let workload = generate_workload(model, &config.traffic, config.seed);
    let mut qss_policy = AtmChoicePolicy::new(model, config.traffic, config.seed);
    let qss_report = simulate_program(
        &program,
        &model.net,
        &config.cost,
        &workload,
        &mut qss_policy,
    )?;

    // --- Functional baseline: per-module tasks -> emit C skeleton -> simulate. ---
    let tasks = functional_partition(model);
    let functional_c = emit_functional_c(model);
    let mut functional_policy = AtmChoicePolicy::new(model, config.traffic, config.seed);
    let functional_report = if naive {
        simulate_functional_partition_naive(
            &model.net,
            &tasks,
            &config.cost,
            &workload,
            &mut functional_policy,
        )?
    } else {
        simulate_functional_partition(
            &model.net,
            &tasks,
            &config.cost,
            &workload,
            &mut functional_policy,
        )?
    };

    let qss = Table1Row {
        implementation: "QSS".to_string(),
        tasks: program.task_count(),
        lines_of_c: metrics.lines_of_c,
        clock_cycles: qss_report.total_cycles,
        activations: qss_report.activations,
    };
    let functional = Table1Row {
        implementation: "Functional task partitioning".to_string(),
        tasks: tasks.len(),
        lines_of_c: functional_c
            .lines()
            .filter(|line| !line.trim().is_empty())
            .count(),
        clock_cycles: functional_report.total_cycles,
        activations: functional_report.activations,
    };
    Ok(Table1 {
        qss,
        functional,
        schedule_cycles,
        qss_report,
        functional_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtmConfig;

    #[test]
    fn table1_shape_matches_paper_on_small_model() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let table = run_table1(&model, &Table1Config::default()).unwrap();
        // Two independent-rate inputs -> two QSS tasks; five modules -> five baseline
        // tasks, exactly the paper's task counts.
        assert_eq!(table.qss.tasks, 2);
        assert_eq!(table.functional.tasks, 5);
        assert!(table.qss_wins(), "expected QSS to win: {table}");
        assert!(table.cycle_ratio() > 1.0);
        assert!(table.schedule_cycles >= 2);
        // Both implementations processed the same number of events.
        assert_eq!(
            table.qss_report.events_processed,
            table.functional_report.events_processed
        );
    }

    #[test]
    fn fast_path_table_is_identical_to_naive_table() {
        // The acceptance bar for the firing fast path: the entire Table I harness —
        // cycles, activations, per-task breakdowns, fire counts, peaks — is bit-for-bit
        // identical whether the functional baseline runs on the FiringSession or on the
        // seed marking-by-marking token game. Checked on both model sizes and two seeds.
        for config in [AtmConfig::small(), AtmConfig::paper()] {
            let model = AtmModel::build(config).unwrap();
            for seed in [1999, 7] {
                let table_config = Table1Config {
                    seed,
                    ..Table1Config::default()
                };
                let fast = run_table1(&model, &table_config).unwrap();
                let naive = run_table1_naive(&model, &table_config).unwrap();
                assert_eq!(fast.qss, naive.qss);
                assert_eq!(fast.functional, naive.functional);
                assert_eq!(fast.schedule_cycles, naive.schedule_cycles);
                assert_eq!(fast.qss_report, naive.qss_report);
                assert_eq!(fast.functional_report, naive.functional_report);
            }
        }
    }

    #[test]
    fn table1_display_has_paper_rows() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let table = run_table1(&model, &Table1Config::default()).unwrap();
        let text = table.to_string();
        assert!(text.contains("Number of tasks"));
        assert!(text.contains("Lines of C code"));
        assert!(text.contains("Clock cycles"));
    }

    #[test]
    fn different_seeds_change_cycles_but_not_shape() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let a = run_table1(
            &model,
            &Table1Config {
                seed: 1,
                ..Table1Config::default()
            },
        )
        .unwrap();
        let b = run_table1(
            &model,
            &Table1Config {
                seed: 2,
                ..Table1Config::default()
            },
        )
        .unwrap();
        assert!(a.qss_wins());
        assert!(b.qss_wins());
        assert_eq!(a.qss.tasks, b.qss.tasks);
        assert_eq!(a.qss.lines_of_c, b.qss.lines_of_c);
    }
}
