//! Errors reported by the ATM case-study harness.

use fcpn_codegen::CodegenError;
use fcpn_petri::PetriError;
use fcpn_qss::QssError;
use fcpn_rtos::RtosError;
use std::fmt;

/// Errors produced while building the ATM model or running the Table I experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtmError {
    /// The ATM model turned out not to be quasi-statically schedulable (this would be a
    /// modelling bug; the report is attached for diagnosis).
    NotSchedulable(String),
    /// Building the net failed.
    Petri(PetriError),
    /// The scheduler rejected the model.
    Qss(QssError),
    /// Software synthesis failed.
    Codegen(CodegenError),
    /// The run-time simulation failed.
    Rtos(RtosError),
}

impl fmt::Display for AtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmError::NotSchedulable(report) => {
                write!(f, "atm model is not schedulable: {report}")
            }
            AtmError::Petri(e) => write!(f, "petri net error: {e}"),
            AtmError::Qss(e) => write!(f, "scheduling error: {e}"),
            AtmError::Codegen(e) => write!(f, "code generation error: {e}"),
            AtmError::Rtos(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for AtmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtmError::NotSchedulable(_) => None,
            AtmError::Petri(e) => Some(e),
            AtmError::Qss(e) => Some(e),
            AtmError::Codegen(e) => Some(e),
            AtmError::Rtos(e) => Some(e),
        }
    }
}

impl From<PetriError> for AtmError {
    fn from(e: PetriError) -> Self {
        AtmError::Petri(e)
    }
}

impl From<QssError> for AtmError {
    fn from(e: QssError) -> Self {
        AtmError::Qss(e)
    }
}

impl From<CodegenError> for AtmError {
    fn from(e: CodegenError) -> Self {
        AtmError::Codegen(e)
    }
}

impl From<RtosError> for AtmError {
    fn from(e: RtosError) -> Self {
        AtmError::Rtos(e)
    }
}

/// Result alias for the crate.
pub type Result<T, E = AtmError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AtmError = PetriError::ZeroWeightArc.into();
        assert!(e.to_string().contains("petri"));
        let e: AtmError = QssError::Empty.into();
        assert!(e.to_string().contains("scheduling"));
        let e = AtmError::NotSchedulable("2 components failed".into());
        assert!(e.to_string().contains("components"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
