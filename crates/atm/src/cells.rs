//! ATM cell workloads and the data-driven choice policy.
//!
//! The paper's testbench is a stream of 50 ATM cells entering the server at irregular
//! times while the periodic `Tick` drives cell emission. The generator here produces the
//! same kind of stimulus from a seeded random-number generator, and
//! [`AtmChoicePolicy`] plays the role of the cell data: it resolves every free choice of
//! the model (congestion, message boundaries, destination queue, buffer occupancy, WFQ
//! mode) with configurable probabilities, so that both the QSS implementation and the
//! functional baseline process statistically identical traffic.
//!
//! Determinism is what makes the Table I fast path checkable: the workload and the
//! policy are pure functions of their seed, so the session-backed functional simulator
//! and the retained naive one can be replayed on *identical* stimulus and pinned to
//! identical reports (see [`run_table1`](crate::run_table1) /
//! [`run_table1_naive`](crate::run_table1_naive)).

use crate::AtmModel;
use fcpn_codegen::ChoiceResolver;
use fcpn_petri::{PlaceId, TransitionId};
use fcpn_rtos::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of ATM cells in the testbench (the paper uses 50).
    pub cells: usize,
    /// Mean inter-arrival time of cells, in ticks of the output port.
    pub mean_cell_gap: u64,
    /// Number of periodic tick events to generate.
    pub ticks: usize,
    /// Tick period (abstract time units).
    pub tick_period: u64,
    /// Probability that the node is congested when a cell arrives.
    pub congestion_probability: f64,
    /// Probability that an emitted/discarded cell terminates its message.
    pub end_of_message_probability: f64,
    /// Probability that the buffer is empty when a tick fires.
    pub buffer_empty_probability: f64,
    /// Probability that a queue is above its discard threshold.
    pub above_threshold_probability: f64,
    /// Probability that the WFQ update needs the full (slow) recomputation.
    pub wfq_full_probability: f64,
}

impl TrafficConfig {
    /// The paper's testbench: 50 cells, with ticks covering the same time span.
    pub fn paper() -> Self {
        TrafficConfig {
            cells: 50,
            mean_cell_gap: 7,
            ticks: 60,
            tick_period: 6,
            congestion_probability: 0.15,
            end_of_message_probability: 0.25,
            buffer_empty_probability: 0.2,
            above_threshold_probability: 0.1,
            wfq_full_probability: 0.3,
        }
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig::paper()
    }
}

/// Generates the merged Cell + Tick workload for `model`.
pub fn generate_workload(model: &AtmModel, config: &TrafficConfig, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaps: Vec<u64> = (0..config.cells)
        .map(|_| 1 + rng.gen_range(0..=config.mean_cell_gap.max(1) * 2))
        .collect();
    let cells = Workload::irregular(model.cell, gaps, config.cells, 0);
    let ticks = Workload::periodic(model.tick, config.tick_period.max(1), config.ticks, 1);
    cells.merge(ticks)
}

/// Resolves the model's data-dependent choices according to the traffic statistics.
///
/// The same policy type (seeded identically) is used for the QSS implementation and for
/// the functional-partitioning baseline so both process equivalent data.
#[derive(Debug, Clone)]
pub struct AtmChoicePolicy {
    rng: StdRng,
    config: TrafficConfig,
    queue_cursor: usize,
    choice_names: Vec<(PlaceId, &'static str)>,
}

impl AtmChoicePolicy {
    /// Creates a policy for `model` with the given traffic statistics and seed.
    pub fn new(model: &AtmModel, config: TrafficConfig, seed: u64) -> Self {
        AtmChoicePolicy {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_cafe),
            config,
            queue_cursor: 0,
            choice_names: model.choices.clone(),
        }
    }

    fn kind_of(&self, place: PlaceId) -> &'static str {
        self.choice_names
            .iter()
            .find(|&&(p, _)| p == place)
            .map(|&(_, name)| name)
            .unwrap_or("unknown")
    }

    fn pick_with_probability(
        &mut self,
        candidates: &[TransitionId],
        first_probability: f64,
    ) -> TransitionId {
        // By construction the "affirmative" transition was added first.
        if self.rng.gen_bool(first_probability.clamp(0.0, 1.0)) {
            candidates[0]
        } else {
            candidates[candidates.len() - 1]
        }
    }
}

impl ChoiceResolver for AtmChoicePolicy {
    fn resolve(&mut self, place: PlaceId, candidates: &[TransitionId]) -> TransitionId {
        if candidates.len() == 1 {
            return candidates[0];
        }
        match self.kind_of(place) {
            "node congested?" => {
                // First candidate is `not_congested`.
                self.pick_with_probability(candidates, 1.0 - self.config.congestion_probability)
            }
            "start of message?" => {
                self.pick_with_probability(candidates, self.config.end_of_message_probability)
            }
            "destination VPN queue" | "which VPN queue emits next" => {
                // Round-robin over the queues keeps traffic balanced and deterministic.
                let pick = candidates[self.queue_cursor % candidates.len()];
                self.queue_cursor += 1;
                pick
            }
            "queue occupancy below threshold?" => self
                .pick_with_probability(candidates, 1.0 - self.config.above_threshold_probability),
            "incremental or full recomputation?" => {
                self.pick_with_probability(candidates, 1.0 - self.config.wfq_full_probability)
            }
            "buffer empty?" => {
                self.pick_with_probability(candidates, self.config.buffer_empty_probability)
            }
            "last cell of the message?" => {
                self.pick_with_probability(candidates, self.config.end_of_message_probability)
            }
            _ => candidates[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtmConfig;

    #[test]
    fn workload_contains_cells_and_ticks() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let config = TrafficConfig::paper();
        let w = generate_workload(&model, &config, 42);
        assert_eq!(w.count_for(model.cell), 50);
        assert_eq!(w.count_for(model.tick), 60);
        assert_eq!(w.len(), 110);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let config = TrafficConfig::paper();
        let a = generate_workload(&model, &config, 7);
        let b = generate_workload(&model, &config, 7);
        let c = generate_workload(&model, &config, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn policy_resolves_every_model_choice() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let mut policy = AtmChoicePolicy::new(&model, TrafficConfig::paper(), 1);
        for &(place, _) in &model.choices {
            let candidates: Vec<TransitionId> =
                model.net.consumers(place).iter().map(|&(t, _)| t).collect();
            let chosen = policy.resolve(place, &candidates);
            assert!(candidates.contains(&chosen));
        }
    }

    #[test]
    fn queue_choices_round_robin() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let mut policy = AtmChoicePolicy::new(&model, TrafficConfig::paper(), 1);
        let classify = model
            .choices
            .iter()
            .find(|&&(_, name)| name == "destination VPN queue")
            .map(|&(p, _)| p)
            .unwrap();
        let candidates: Vec<TransitionId> = model
            .net
            .consumers(classify)
            .iter()
            .map(|&(t, _)| t)
            .collect();
        let first = policy.resolve(classify, &candidates);
        let second = policy.resolve(classify, &candidates);
        assert_ne!(first, second);
    }
}
