//! The functional task-partitioning baseline of Table I.
//!
//! The paper compares its QSS implementation against an implementation obtained "by
//! synthesizing separately one task for each of the five modules" of the block diagram.
//! This module derives that partitioning from the [`AtmModel`]'s module annotation and
//! emits the corresponding C skeleton: every module becomes an RTOS task with its own
//! input queues, dispatch loop and inter-task writes, which is where the extra lines of
//! code and the extra run-time overhead come from.
//!
//! The partitioning built by [`functional_partition`] is executed by
//! [`fcpn_rtos::simulate_functional_partition`] — since PR 3 on the
//! [`FiringSession`](fcpn_petri::statespace::FiringSession) firing fast path — while
//! this module's [`emit_functional_c`] supplies the "Lines of C code" row of Table I.

use crate::{AtmModel, Module, MODULES};
use fcpn_petri::{PlaceId, TransitionId};
use fcpn_rtos::FunctionalTask;
use std::fmt::Write as _;

/// Builds the five functional tasks (one per module of Figure 8).
pub fn functional_partition(model: &AtmModel) -> Vec<FunctionalTask> {
    MODULES
        .iter()
        .map(|&module| FunctionalTask {
            name: module_name(module).to_string(),
            transitions: model.module_transitions(module),
        })
        .collect()
}

fn module_name(module: Module) -> &'static str {
    match module {
        Module::Msd => "task_msd",
        Module::Buffer => "task_buffer",
        Module::CellExtract => "task_cell_extract",
        Module::Wfq => "task_wfq_scheduling",
        Module::Arbiter => "task_arbiter",
    }
}

/// Places whose producer and consumer live in different modules: these become inter-task
/// queues in the functional implementation.
pub fn boundary_places(model: &AtmModel) -> Vec<PlaceId> {
    model
        .net
        .places()
        .filter(|&p| {
            let producers = model.net.producers(p);
            let consumers = model.net.consumers(p);
            producers.iter().any(|&(producer, _)| {
                consumers
                    .iter()
                    .any(|&(consumer, _)| model.module_of(producer) != model.module_of(consumer))
            })
        })
        .collect()
}

/// Emits the C implementation skeleton of the functional-partitioning baseline and
/// returns the text; its non-blank line count is the "Lines of C code" entry of the
/// baseline row in Table I.
///
/// Each module becomes a self-contained RTOS task that must (a) poll and drain every
/// inter-task input queue, (b) dispatch on the token tags it receives, (c) check at run
/// time whether each of its computations has the data it needs, and (d) explicitly write
/// every produced token either into its local state or into the consumer task's queue.
/// The quasi-static implementation compiles most of this bookkeeping away, which is why
/// it ends up with less code as well as fewer cycles.
pub fn emit_functional_c(model: &AtmModel) -> String {
    let net = &model.net;
    let queues = boundary_places(model);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Functional task partitioning of net `{}`: one RTOS task per module. */",
        net.name()
    );
    let _ = writeln!(out);
    for t in net.transitions() {
        let _ = writeln!(out, "extern void {}(void);", net.transition_name(t));
    }
    let _ = writeln!(out);
    for &q in &queues {
        let _ = writeln!(out, "static queue_t q_{};", net.place_name(q));
        let _ = writeln!(out, "static token_t in_{};", net.place_name(q));
        let _ = writeln!(out, "static token_t out_{};", net.place_name(q));
    }
    let _ = writeln!(out);

    for &module in &MODULES {
        let transitions = model.module_transitions(module);
        let module_of = |t: fcpn_petri::TransitionId| model.module_of(t);

        // Places fully internal to the module become fields of its state struct.
        let internal: Vec<PlaceId> = net
            .places()
            .filter(|&p| {
                let produced_here = net
                    .producers(p)
                    .iter()
                    .any(|&(producer, _)| module_of(producer) == module);
                let consumed_here = net
                    .consumers(p)
                    .iter()
                    .any(|&(consumer, _)| module_of(consumer) == module);
                produced_here && consumed_here && !queues.contains(&p)
            })
            .collect();
        let reads: Vec<PlaceId> = queues
            .iter()
            .copied()
            .filter(|&p| {
                net.consumers(p)
                    .iter()
                    .any(|&(consumer, _)| module_of(consumer) == module)
                    && net
                        .producers(p)
                        .iter()
                        .any(|&(producer, _)| module_of(producer) != module)
            })
            .collect();
        let writes: Vec<PlaceId> = queues
            .iter()
            .copied()
            .filter(|&p| {
                net.producers(p)
                    .iter()
                    .any(|&(producer, _)| module_of(producer) == module)
                    && net
                        .consumers(p)
                        .iter()
                        .any(|&(consumer, _)| module_of(consumer) != module)
            })
            .collect();

        // Per-module state.
        let _ = writeln!(out, "typedef struct {{");
        for &p in &internal {
            let _ = writeln!(out, "  int pending_{};", net.place_name(p));
        }
        let _ = writeln!(out, "  int activations;");
        let _ = writeln!(out, "}} {}_state_t;", module_name(module));
        let _ = writeln!(out, "static {0}_state_t {0}_state;", module_name(module));
        let _ = writeln!(out);

        // Init function: reset state, initialise queues this module owns (reads).
        let _ = writeln!(out, "void {}_init(void) {{", module_name(module));
        for &p in &internal {
            let _ = writeln!(
                out,
                "  {}_state.pending_{} = 0;",
                module_name(module),
                net.place_name(p)
            );
        }
        for &p in &reads {
            let _ = writeln!(out, "  queue_init(&q_{});", net.place_name(p));
        }
        let _ = writeln!(out, "  {}_state.activations = 0;", module_name(module));
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);

        // The task body.
        let _ = writeln!(out, "void {}(void) {{", module_name(module));
        let _ = writeln!(out, "  {}_state.activations++;", module_name(module));
        for &p in &reads {
            let _ = writeln!(out, "  if (!queue_empty(&q_{})) {{", net.place_name(p));
            let _ = writeln!(out, "    in_{0} = queue_read(&q_{0});", net.place_name(p));
            let _ = writeln!(out, "  }}");
        }
        for &t in &transitions {
            let name = net.transition_name(t);
            // Data-dependent choices are dispatched on the token tag; every sibling of the
            // choice needs a case here, even when it is forwarded to another task.
            if choice_inputs(model, t) {
                let place = net
                    .inputs(t)
                    .iter()
                    .map(|&(p, _)| p)
                    .find(|&p| net.is_choice_place(p))
                    .expect("transition has a choice input");
                let _ = writeln!(out, "  switch (token_tag_{}()) {{", net.place_name(place));
                let _ = writeln!(out, "  case TAG_{}:", name.to_uppercase());
                let _ = writeln!(out, "    if (ready_{name}()) {{ {name}(); }}");
                let _ = writeln!(out, "    break;");
                let _ = writeln!(out, "  default:");
                let _ = writeln!(out, "    break;");
                let _ = writeln!(out, "  }}");
            } else if net.is_source_transition(t) {
                let _ = writeln!(out, "  if (event_pending_{name}()) {{ {name}(); }}");
            } else {
                let _ = writeln!(out, "  if (ready_{name}()) {{ {name}(); }}");
            }
            // Every produced token must be routed explicitly: internal places update the
            // module state, boundary places go through the consumer task's queue.
            for &(p, _) in net.outputs(t) {
                if queues.contains(&p) {
                    let _ = writeln!(out, "  queue_write(&q_{0}, out_{0});", net.place_name(p));
                } else if internal.contains(&p) {
                    let _ = writeln!(
                        out,
                        "  {}_state.pending_{}++;",
                        module_name(module),
                        net.place_name(p)
                    );
                }
            }
        }
        for &p in &writes {
            let _ = writeln!(out, "  rtos_notify(owner_of_q_{}());", net.place_name(p));
        }
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    // RTOS registration table and main loop.
    let _ = writeln!(out, "int main(void) {{");
    for &module in &MODULES {
        let _ = writeln!(out, "  {}_init();", module_name(module));
    }
    for &module in &MODULES {
        let _ = writeln!(out, "  rtos_register_task({});", module_name(module));
    }
    let _ = writeln!(out, "  rtos_start();");
    let _ = writeln!(out, "}}");
    out
}

fn choice_inputs(model: &AtmModel, transition: TransitionId) -> bool {
    model
        .net
        .inputs(transition)
        .iter()
        .any(|&(p, _)| model.net.is_choice_place(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtmConfig;

    #[test]
    fn partition_covers_all_transitions_in_five_tasks() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let tasks = functional_partition(&model);
        assert_eq!(tasks.len(), 5);
        let total: usize = tasks.iter().map(|t| t.transitions.len()).sum();
        assert_eq!(total, model.net.transition_count());
        // The two environment inputs live in different tasks.
        assert!(tasks
            .iter()
            .find(|t| t.name == "task_msd")
            .unwrap()
            .transitions
            .contains(&model.cell));
        assert!(tasks
            .iter()
            .find(|t| t.name == "task_cell_extract")
            .unwrap()
            .transitions
            .contains(&model.tick));
    }

    #[test]
    fn boundary_places_exist_between_modules() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let queues = boundary_places(&model);
        // The WFQ request place is fed by the buffer and extract modules and consumed by
        // the WFQ module, so it must be an inter-task queue.
        let p_wfq_req = model.net.place_by_name("p_wfq_req").unwrap();
        assert!(queues.contains(&p_wfq_req));
        assert!(!queues.is_empty());
    }

    #[test]
    fn functional_c_mentions_every_task_and_queue() {
        let model = AtmModel::build(AtmConfig::small()).unwrap();
        let c = emit_functional_c(&model);
        for &module in &MODULES {
            assert!(c.contains(module_name(module)));
        }
        assert!(c.contains("queue_read"));
        assert!(c.contains("rtos_register_task"));
        let opens = c.matches('{').count();
        let closes = c.matches('}').count();
        assert_eq!(opens, closes);
    }
}
