//! T-allocations: control functions that resolve every free choice of the net
//! (Definition 3.3 of the paper).

use crate::{QssError, Result};
use fcpn_petri::analysis::ConflictAnalysis;
use fcpn_petri::{PetriNet, PlaceId, TransitionId};
use std::fmt;

/// A T-allocation resolves every choice place of the net to exactly one of its output
/// transitions. Transitions that lose a conflict are *unallocated* and are removed by the
/// Reduction Algorithm; all other transitions are allocated.
///
/// The paper describes a T-allocation as a function over *all* places; places with a
/// single successor have no freedom, so only the choice places are stored here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TAllocation {
    /// For every choice place (in ascending place order), the transition chosen to
    /// consume from it.
    choices: Vec<(PlaceId, TransitionId)>,
    /// Transitions excluded by this allocation (conflict losers), ascending.
    excluded: Vec<TransitionId>,
}

impl TAllocation {
    /// The `(choice place, chosen transition)` pairs of this allocation, in ascending
    /// place order.
    pub fn choices(&self) -> &[(PlaceId, TransitionId)] {
        &self.choices
    }

    /// The transition this allocation chooses at `place`, if `place` is a choice place.
    pub fn chosen_at(&self, place: PlaceId) -> Option<TransitionId> {
        self.choices
            .iter()
            .find(|&&(p, _)| p == place)
            .map(|&(_, t)| t)
    }

    /// Transitions removed by this allocation (the conflict losers), ascending.
    pub fn excluded_transitions(&self) -> &[TransitionId] {
        &self.excluded
    }

    /// Returns `true` if `transition` survives under this allocation.
    pub fn allocates(&self, transition: TransitionId) -> bool {
        self.excluded.binary_search(&transition).is_err()
    }

    /// The allocated transition set `A_i` as the paper lists it: every transition of the
    /// net except the conflict losers.
    pub fn allocated_set(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transitions().filter(|&t| self.allocates(t)).collect()
    }

    /// Renders the allocation as `p1->t2, p5->t7`-style text using net names.
    pub fn describe(&self, net: &PetriNet) -> String {
        self.choices
            .iter()
            .map(|&(p, t)| format!("{}->{}", net.place_name(p), net.transition_name(t)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for TAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (p, t)) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}->{t}")?;
        }
        write!(f, "]")
    }
}

/// Options controlling allocation enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationOptions {
    /// Maximum number of allocations that may be enumerated. The count is the product of
    /// the out-degrees of the choice places and is exponential in the number of choices.
    pub max_allocations: u128,
}

impl Default for AllocationOptions {
    fn default() -> Self {
        AllocationOptions {
            max_allocations: 1 << 20,
        }
    }
}

/// A lazy stream over every T-allocation of `net`, in the same mixed-radix order the
/// eager enumeration produced (slot 0 — the lowest choice place — varies fastest).
///
/// The number of allocations is the product of the choice places' out-degrees and is
/// exponential in the number of choices; streaming lets callers process (and discard)
/// one allocation at a time instead of materialising all `2^n` up front, which turns the
/// scheduler's peak memory from O(2^n) into O(n).
///
/// Work shared between consecutive allocations is deduplicated: the excluded-transition
/// set of slots `s..` (the *suffix* of the counter, which only changes when a carry
/// propagates past slot `s`) is cached as a pre-merged sorted list, so advancing the
/// counter re-merges only the slots below the carry instead of rebuilding and re-sorting
/// the full conflict-loser set per allocation.
#[derive(Debug, Clone)]
pub struct AllocationIter {
    /// `(choice place, its output transitions)`, ascending place order.
    choices: Vec<(PlaceId, Vec<TransitionId>)>,
    /// `losers[slot][pick]`: the sorted conflict losers of taking `pick` at `slot`.
    losers: Vec<Vec<Vec<TransitionId>>>,
    cursor: Vec<usize>,
    /// `tails[slot]`: merged sorted losers of slots `slot..` under the current cursor;
    /// `tails[choices.len()]` is empty. Shared across every allocation whose counter
    /// suffix agrees.
    tails: Vec<Vec<TransitionId>>,
    remaining: u128,
    total: u128,
}

impl AllocationIter {
    fn new(choices: Vec<(PlaceId, Vec<TransitionId>)>, total: u128) -> Self {
        let losers: Vec<Vec<Vec<TransitionId>>> = choices
            .iter()
            .map(|(_, outs)| {
                (0..outs.len())
                    .map(|pick| {
                        let mut l: Vec<TransitionId> =
                            outs.iter().copied().filter(|&t| t != outs[pick]).collect();
                        l.sort();
                        l
                    })
                    .collect()
            })
            .collect();
        let mut iter = AllocationIter {
            cursor: vec![0; choices.len()],
            tails: vec![Vec::new(); choices.len() + 1],
            choices,
            losers,
            remaining: total,
            total,
        };
        iter.remerge_tails_from(iter.choices.len());
        iter
    }

    /// Total number of allocations the stream yields.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Allocations not yet yielded.
    pub fn remaining(&self) -> u128 {
        self.remaining
    }

    /// Rebuilds `tails[s]` for `s = from-1 .. 0` (everything below a carry at `from`).
    fn remerge_tails_from(&mut self, from: usize) {
        remerge_tails(&self.losers, &self.cursor, &mut self.tails, from);
    }
}

/// Merges the two sorted loser lists into `out`, deduplicating as it goes.
fn merge_sorted_dedup(left: &[TransitionId], right: &[TransitionId], out: &mut Vec<TransitionId>) {
    out.clear();
    out.reserve(left.len() + right.len());
    let (mut a, mut b) = (0, 0);
    while a < left.len() || b < right.len() {
        let pick_left = match (left.get(a), right.get(b)) {
            (Some(x), Some(y)) => x <= y,
            (Some(_), None) => true,
            _ => false,
        };
        let next = if pick_left {
            let v = left[a];
            a += 1;
            v
        } else {
            let v = right[b];
            b += 1;
            v
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
}

/// Rebuilds `tails[s]` for `s = from-1 .. 0` against the current cursor (shared by the
/// counting-order and gray-code iterators).
fn remerge_tails(
    losers: &[Vec<Vec<TransitionId>>],
    cursor: &[usize],
    tails: &mut [Vec<TransitionId>],
    from: usize,
) {
    for s in (0..from).rev() {
        // `tails[s]` is rebuilt from `losers[s][cursor[s]]` and `tails[s+1]`; split the
        // slice so the source and destination borrows are disjoint.
        let (head, tail) = tails.split_at_mut(s + 1);
        let mut merged = std::mem::take(&mut head[s]);
        merge_sorted_dedup(&losers[s][cursor[s]], &tail[0], &mut merged);
        head[s] = merged;
    }
}

impl Iterator for AllocationIter {
    type Item = TAllocation;

    fn next(&mut self) -> Option<TAllocation> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let chosen: Vec<(PlaceId, TransitionId)> = self
            .choices
            .iter()
            .zip(&self.cursor)
            .map(|((place, outs), &pick)| (*place, outs[pick]))
            .collect();
        let allocation = TAllocation {
            choices: chosen,
            excluded: self.tails[0].clone(),
        };
        // Advance the mixed-radix counter (slot 0 fastest) and re-merge the tails the
        // carry invalidated.
        if self.remaining > 0 {
            let mut slot = 0;
            loop {
                self.cursor[slot] += 1;
                if self.cursor[slot] < self.choices[slot].1.len() {
                    break;
                }
                self.cursor[slot] = 0;
                slot += 1;
            }
            self.remerge_tails_from(slot + 1);
        }
        Some(allocation)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match usize::try_from(self.remaining) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }
}

/// A lazy stream over every T-allocation of `net` in **mixed-radix reflected gray-code
/// order**: consecutive allocations differ in exactly one choice place's pick (and that
/// pick moves by one position in the place's output list).
///
/// The gray order is what makes the scheduling pipeline incremental: a one-choice delta
/// invalidates only the loser-merge tails at and below the changed slot, keeps the
/// workspace reduction's inputs maximally similar between steps, and lets a sharded
/// sweep hand each worker a contiguous gray range positioned in O(choices) via
/// [`GrayAllocationIter::range`].
///
/// Every item carries the allocation's **rank** — its index in the seed's counting
/// (mixed-radix) enumeration, i.e. the position [`allocation_iter`] would yield it at —
/// so consumers can merge gray-swept results back into the seed order
/// deterministically.
#[derive(Debug, Clone)]
pub struct GrayAllocationIter {
    /// `(choice place, its output transitions)`, ascending place order.
    choices: Vec<(PlaceId, Vec<TransitionId>)>,
    /// `losers[slot][pick]`: the sorted conflict losers of taking `pick` at `slot`.
    losers: Vec<Vec<Vec<TransitionId>>>,
    /// Gray digits: the current pick per slot.
    cursor: Vec<usize>,
    /// Scratch for the next step's gray digits.
    gray_next: Vec<usize>,
    /// Merged sorted losers of slots `slot..` under the current cursor (see
    /// [`AllocationIter::tails`]).
    tails: Vec<Vec<TransitionId>>,
    /// Gray-sequence position of the *next* item to yield.
    position: u128,
    /// Exclusive end of the swept gray range.
    end: u128,
    total: u128,
}

impl GrayAllocationIter {
    fn new(choices: Vec<(PlaceId, Vec<TransitionId>)>, total: u128) -> Self {
        let losers: Vec<Vec<Vec<TransitionId>>> = choices
            .iter()
            .map(|(_, outs)| {
                (0..outs.len())
                    .map(|pick| {
                        let mut l: Vec<TransitionId> =
                            outs.iter().copied().filter(|&t| t != outs[pick]).collect();
                        l.sort();
                        l
                    })
                    .collect()
            })
            .collect();
        let slots = choices.len();
        let mut iter = GrayAllocationIter {
            cursor: vec![0; slots],
            gray_next: vec![0; slots],
            tails: vec![Vec::new(); slots + 1],
            choices,
            losers,
            position: 0,
            end: total,
            total,
        };
        remerge_tails(&iter.losers, &iter.cursor, &mut iter.tails, slots);
        iter
    }

    /// Total number of allocations in the full gray sequence.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Allocations not yet yielded from this iterator's range.
    pub fn remaining(&self) -> u128 {
        self.end - self.position
    }

    /// Restricts the stream to gray-sequence positions `start..end` (a contiguous chunk
    /// of the sweep, used to shard the allocation space across workers). Positioning
    /// costs O(choices · merge): the gray digits at `start` are computed directly from
    /// the mixed-radix reflection formula, not by stepping.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > total`.
    pub fn range(mut self, start: u128, end: u128) -> GrayAllocationIter {
        assert!(start <= end && end <= self.total, "invalid gray range");
        self.position = start;
        self.end = end;
        if start < end {
            gray_digits(&self.choices, start, &mut self.cursor);
            let slots = self.choices.len();
            remerge_tails(&self.losers, &self.cursor, &mut self.tails, slots);
        }
        self
    }

    /// The seed (counting-order) index of the allocation currently under the cursor:
    /// the mixed-radix value of the gray digits, slot 0 least significant.
    fn rank(&self) -> u128 {
        let mut rank: u128 = 0;
        let mut prod: u128 = 1;
        for (slot, (_, outs)) in self.choices.iter().enumerate() {
            rank += self.cursor[slot] as u128 * prod;
            prod *= outs.len() as u128;
        }
        rank
    }
}

/// Computes the reflected mixed-radix gray digits of sequence position `n` into `out`:
/// `g_i = a_i` when the counting value of the digits above slot `i` is even, and the
/// slot-reversed `r_i − 1 − a_i` when it is odd (the reflection that makes consecutive
/// positions differ in exactly one digit, by exactly one).
fn gray_digits(choices: &[(PlaceId, Vec<TransitionId>)], n: u128, out: &mut [usize]) {
    let mut prod: u128 = 1;
    for (slot, (_, outs)) in choices.iter().enumerate() {
        let r = outs.len() as u128;
        let a = (n / prod) % r;
        let above = n / (prod * r);
        out[slot] = if above.is_multiple_of(2) {
            a as usize
        } else {
            (r - 1 - a) as usize
        };
        prod *= r;
    }
}

impl Iterator for GrayAllocationIter {
    type Item = (u128, TAllocation);

    fn next(&mut self) -> Option<(u128, TAllocation)> {
        if self.position >= self.end {
            return None;
        }
        let rank = self.rank();
        let chosen: Vec<(PlaceId, TransitionId)> = self
            .choices
            .iter()
            .zip(&self.cursor)
            .map(|((place, outs), &pick)| (*place, outs[pick]))
            .collect();
        let allocation = TAllocation {
            choices: chosen,
            excluded: self.tails[0].clone(),
        };
        self.position += 1;
        if self.position < self.end {
            // Exactly one gray digit changes per step; re-merge the tails at and below
            // the changed slot only.
            gray_digits(&self.choices, self.position, &mut self.gray_next);
            let slot = self
                .gray_next
                .iter()
                .zip(&self.cursor)
                .rposition(|(next, cur)| next != cur)
                .expect("consecutive gray positions differ in one digit");
            debug_assert_eq!(self.gray_next[..slot], self.cursor[..slot]);
            self.cursor[slot] = self.gray_next[slot];
            remerge_tails(&self.losers, &self.cursor, &mut self.tails, slot + 1);
        }
        Some((rank, allocation))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match usize::try_from(self.remaining()) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }
}

/// Opens a lazy stream over every T-allocation of `net` in gray-code order (see
/// [`GrayAllocationIter`]); the scheduler's sweep order.
///
/// # Errors
///
/// Same as [`allocation_iter`].
pub fn allocation_iter_gray(
    net: &PetriNet,
    options: AllocationOptions,
) -> Result<GrayAllocationIter> {
    let (choices, total) = checked_choices(net, options)?;
    Ok(GrayAllocationIter::new(choices, total))
}

/// Opens a lazy stream over every T-allocation of `net` (the cartesian product of the
/// choice places' output transitions) without materialising them.
///
/// # Errors
///
/// * [`QssError::NotFreeChoice`] if the net violates the free-choice condition.
/// * [`QssError::Empty`] if the net has no transitions.
/// * [`QssError::TooManyAllocations`] if the product exceeds `options.max_allocations`.
pub fn allocation_iter(net: &PetriNet, options: AllocationOptions) -> Result<AllocationIter> {
    let (choices, total) = checked_choices(net, options)?;
    Ok(AllocationIter::new(choices, total))
}

/// Validates the net and extracts its choice slots plus the allocation count (shared by
/// the counting-order and gray-code streams).
#[allow(clippy::type_complexity)]
fn checked_choices(
    net: &PetriNet,
    options: AllocationOptions,
) -> Result<(Vec<(PlaceId, Vec<TransitionId>)>, u128)> {
    let classification = fcpn_petri::analysis::Classification::of(net);
    if !classification.is_free_choice() {
        return Err(QssError::NotFreeChoice {
            violations: classification.free_choice_violations,
        });
    }
    if net.transition_count() == 0 {
        return Err(QssError::Empty);
    }
    let conflicts = ConflictAnalysis::of(net);
    let choices: Vec<(PlaceId, Vec<TransitionId>)> = conflicts.choices.clone();

    let mut required: u128 = 1;
    for (_, outs) in &choices {
        required = required.saturating_mul(outs.len() as u128);
        if required > options.max_allocations {
            return Err(QssError::TooManyAllocations {
                required,
                limit: options.max_allocations,
            });
        }
    }
    Ok((choices, required))
}

/// Enumerates every T-allocation of `net` eagerly — a thin `collect()` over
/// [`allocation_iter`], kept for callers that genuinely need the whole set.
///
/// # Errors
///
/// Same as [`allocation_iter`].
///
/// # Examples
///
/// ```
/// use fcpn_petri::gallery;
/// use fcpn_qss::{enumerate_allocations, AllocationOptions};
///
/// # fn main() -> Result<(), fcpn_qss::QssError> {
/// let net = gallery::figure5();
/// let allocations = enumerate_allocations(&net, AllocationOptions::default())?;
/// // One choice (p1 -> t2 | t3) gives exactly two allocations, A1 and A2.
/// assert_eq!(allocations.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_allocations(
    net: &PetriNet,
    options: AllocationOptions,
) -> Result<Vec<TAllocation>> {
    Ok(allocation_iter(net, options)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;

    #[test]
    fn conflict_free_net_has_exactly_one_allocation() {
        let net = gallery::figure2();
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 1);
        assert!(allocations[0].choices().is_empty());
        assert!(allocations[0].excluded_transitions().is_empty());
        assert_eq!(
            allocations[0].allocated_set(&net).len(),
            net.transition_count()
        );
    }

    #[test]
    fn figure5_allocations_match_paper() {
        let net = gallery::figure5();
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 2);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        // A1 keeps t2 (excludes t3), A2 keeps t3 (excludes t2).
        let a1 = allocations.iter().find(|a| a.allocates(t2)).unwrap();
        let a2 = allocations.iter().find(|a| a.allocates(t3)).unwrap();
        assert_eq!(a1.excluded_transitions(), &[t3]);
        assert_eq!(a2.excluded_transitions(), &[t2]);
        assert_eq!(a1.chosen_at(p1), Some(t2));
        assert_eq!(a2.chosen_at(p1), Some(t3));
        // A1 = {t1,t2,t4,t5,t6,t7,t8,t9}: eight transitions.
        assert_eq!(a1.allocated_set(&net).len(), 8);
        assert!(a1.describe(&net).contains("p1->t2"));
        assert!(a1.to_string().starts_with('['));
    }

    #[test]
    fn allocations_multiply_across_choices() {
        let net = gallery::choice_chain(4);
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 16);
        // Every allocation excludes exactly one transition per choice.
        for a in &allocations {
            assert_eq!(a.excluded_transitions().len(), 4);
        }
    }

    #[test]
    fn iterator_streams_the_same_sequence_the_eager_api_collects() {
        let net = gallery::choice_chain(6);
        let eager = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        let mut iter = allocation_iter(&net, AllocationOptions::default()).unwrap();
        assert_eq!(iter.total(), 64);
        assert_eq!(iter.size_hint(), (64, Some(64)));
        let streamed: Vec<TAllocation> = iter.by_ref().collect();
        assert_eq!(streamed, eager);
        assert_eq!(iter.remaining(), 0);
        assert_eq!(iter.next(), None);
    }

    #[test]
    fn iterator_is_lazy() {
        // 2^16 allocations exist, but taking three only ever materialises three.
        let net = gallery::choice_chain(16);
        let mut iter = allocation_iter(&net, AllocationOptions::default()).unwrap();
        assert_eq!(iter.total(), 1 << 16);
        let first: Vec<TAllocation> = iter.by_ref().take(3).collect();
        assert_eq!(first.len(), 3);
        assert_eq!(iter.remaining(), (1 << 16) - 3);
        // The three differ only in the lowest choice slot.
        assert_eq!(first[0].choices()[1..], first[1].choices()[1..]);
        assert_ne!(first[0].choices()[0], first[1].choices()[0]);
        // Every allocation excludes exactly one transition per choice.
        for a in &first {
            assert_eq!(a.excluded_transitions().len(), 16);
        }
    }

    /// Number of `(place, transition)` pairs two allocations disagree on.
    fn choice_distance(a: &TAllocation, b: &TAllocation) -> usize {
        a.choices()
            .iter()
            .zip(b.choices())
            .filter(|(x, y)| x != y)
            .count()
    }

    #[test]
    fn gray_order_changes_exactly_one_choice_per_step() {
        let net = gallery::choice_chain(6);
        let items: Vec<(u128, TAllocation)> =
            allocation_iter_gray(&net, AllocationOptions::default())
                .unwrap()
                .collect();
        assert_eq!(items.len(), 64);
        for pair in items.windows(2) {
            assert_eq!(choice_distance(&pair[0].1, &pair[1].1), 1);
        }
    }

    #[test]
    fn gray_ranks_recover_the_counting_order() {
        // Sorting the gray sweep by rank must reproduce the seed enumeration exactly,
        // excluded sets included.
        let net = gallery::choice_chain(5);
        let counting = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        let mut by_rank: Vec<(u128, TAllocation)> =
            allocation_iter_gray(&net, AllocationOptions::default())
                .unwrap()
                .collect();
        by_rank.sort_by_key(|&(rank, _)| rank);
        assert_eq!(by_rank.len(), counting.len());
        for (i, (rank, allocation)) in by_rank.iter().enumerate() {
            assert_eq!(*rank, i as u128);
            assert_eq!(allocation, &counting[i]);
        }
    }

    #[test]
    fn gray_ranges_partition_the_sweep() {
        // Chunked ranges concatenate to the full sweep for several worker counts,
        // including ones that do not divide the total evenly.
        let net = gallery::choice_chain(5);
        let full: Vec<(u128, TAllocation)> =
            allocation_iter_gray(&net, AllocationOptions::default())
                .unwrap()
                .collect();
        for workers in [1u128, 2, 3, 4, 7] {
            let total = full.len() as u128;
            let mut stitched = Vec::new();
            for w in 0..workers {
                let start = total * w / workers;
                let end = total * (w + 1) / workers;
                let chunk = allocation_iter_gray(&net, AllocationOptions::default())
                    .unwrap()
                    .range(start, end);
                assert_eq!(chunk.remaining(), end - start);
                stitched.extend(chunk);
            }
            assert_eq!(stitched, full, "workers={workers}");
        }
    }

    #[test]
    fn gray_iterator_handles_conflict_free_nets() {
        let net = gallery::figure2();
        let items: Vec<(u128, TAllocation)> =
            allocation_iter_gray(&net, AllocationOptions::default())
                .unwrap()
                .collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, 0);
        assert!(items[0].1.choices().is_empty());
        assert!(items[0].1.excluded_transitions().is_empty());
    }

    #[test]
    fn gray_iterator_matches_counting_on_mixed_radix_nets() {
        // figure3a's tree has one 2-way choice; build a mixed-radix case by combining
        // nets is overkill — marked gallery nets with 3-way branches exercise it.
        let mut b = fcpn_petri::NetBuilder::new("mixed-radix");
        let src = b.transition("src");
        let p1 = b.place("p1", 0);
        let p2 = b.place("p2", 0);
        b.arc_t_p(src, p1, 1).unwrap();
        b.arc_t_p(src, p2, 1).unwrap();
        for i in 0..3 {
            let t = b.transition(format!("a{i}"));
            b.arc_p_t(p1, t, 1).unwrap();
        }
        for i in 0..2 {
            let t = b.transition(format!("b{i}"));
            b.arc_p_t(p2, t, 1).unwrap();
        }
        let net = b.build().unwrap();
        let counting = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        let gray: Vec<(u128, TAllocation)> =
            allocation_iter_gray(&net, AllocationOptions::default())
                .unwrap()
                .collect();
        assert_eq!(gray.len(), 6);
        for pair in gray.windows(2) {
            assert_eq!(choice_distance(&pair[0].1, &pair[1].1), 1);
        }
        let mut sorted = gray.clone();
        sorted.sort_by_key(|&(rank, _)| rank);
        for (i, (rank, allocation)) in sorted.iter().enumerate() {
            assert_eq!(*rank, i as u128);
            assert_eq!(allocation, &counting[i]);
        }
    }

    #[test]
    fn allocation_limit_is_enforced() {
        let net = gallery::choice_chain(5);
        let err = enumerate_allocations(
            &net,
            AllocationOptions {
                max_allocations: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QssError::TooManyAllocations {
                required: 32,
                limit: 16
            }
        ));
    }

    #[test]
    fn non_free_choice_nets_are_rejected() {
        let net = gallery::figure1b();
        let err = enumerate_allocations(&net, AllocationOptions::default()).unwrap_err();
        assert!(matches!(err, QssError::NotFreeChoice { .. }));
    }

    #[test]
    fn empty_net_is_rejected() {
        let net = fcpn_petri::NetBuilder::new("empty").build().unwrap();
        assert!(matches!(
            enumerate_allocations(&net, AllocationOptions::default()),
            Err(QssError::Empty)
        ));
    }
}
