//! T-allocations: control functions that resolve every free choice of the net
//! (Definition 3.3 of the paper).

use crate::{QssError, Result};
use fcpn_petri::analysis::ConflictAnalysis;
use fcpn_petri::{PetriNet, PlaceId, TransitionId};
use std::fmt;

/// A T-allocation resolves every choice place of the net to exactly one of its output
/// transitions. Transitions that lose a conflict are *unallocated* and are removed by the
/// Reduction Algorithm; all other transitions are allocated.
///
/// The paper describes a T-allocation as a function over *all* places; places with a
/// single successor have no freedom, so only the choice places are stored here.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TAllocation {
    /// For every choice place (in ascending place order), the transition chosen to
    /// consume from it.
    choices: Vec<(PlaceId, TransitionId)>,
    /// Transitions excluded by this allocation (conflict losers), ascending.
    excluded: Vec<TransitionId>,
}

impl TAllocation {
    /// The `(choice place, chosen transition)` pairs of this allocation, in ascending
    /// place order.
    pub fn choices(&self) -> &[(PlaceId, TransitionId)] {
        &self.choices
    }

    /// The transition this allocation chooses at `place`, if `place` is a choice place.
    pub fn chosen_at(&self, place: PlaceId) -> Option<TransitionId> {
        self.choices
            .iter()
            .find(|&&(p, _)| p == place)
            .map(|&(_, t)| t)
    }

    /// Transitions removed by this allocation (the conflict losers), ascending.
    pub fn excluded_transitions(&self) -> &[TransitionId] {
        &self.excluded
    }

    /// Returns `true` if `transition` survives under this allocation.
    pub fn allocates(&self, transition: TransitionId) -> bool {
        self.excluded.binary_search(&transition).is_err()
    }

    /// The allocated transition set `A_i` as the paper lists it: every transition of the
    /// net except the conflict losers.
    pub fn allocated_set(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transitions().filter(|&t| self.allocates(t)).collect()
    }

    /// Renders the allocation as `p1->t2, p5->t7`-style text using net names.
    pub fn describe(&self, net: &PetriNet) -> String {
        self.choices
            .iter()
            .map(|&(p, t)| format!("{}->{}", net.place_name(p), net.transition_name(t)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for TAllocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (p, t)) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}->{t}")?;
        }
        write!(f, "]")
    }
}

/// Options controlling allocation enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationOptions {
    /// Maximum number of allocations that may be enumerated. The count is the product of
    /// the out-degrees of the choice places and is exponential in the number of choices.
    pub max_allocations: u128,
}

impl Default for AllocationOptions {
    fn default() -> Self {
        AllocationOptions {
            max_allocations: 1 << 20,
        }
    }
}

/// Enumerates every T-allocation of `net` (the cartesian product of the choice places'
/// output transitions).
///
/// # Errors
///
/// * [`QssError::NotFreeChoice`] if the net violates the free-choice condition.
/// * [`QssError::TooManyAllocations`] if the product exceeds `options.max_allocations`.
///
/// # Examples
///
/// ```
/// use fcpn_petri::gallery;
/// use fcpn_qss::{enumerate_allocations, AllocationOptions};
///
/// # fn main() -> Result<(), fcpn_qss::QssError> {
/// let net = gallery::figure5();
/// let allocations = enumerate_allocations(&net, AllocationOptions::default())?;
/// // One choice (p1 -> t2 | t3) gives exactly two allocations, A1 and A2.
/// assert_eq!(allocations.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_allocations(
    net: &PetriNet,
    options: AllocationOptions,
) -> Result<Vec<TAllocation>> {
    let classification = fcpn_petri::analysis::Classification::of(net);
    if !classification.is_free_choice() {
        return Err(QssError::NotFreeChoice {
            violations: classification.free_choice_violations,
        });
    }
    if net.transition_count() == 0 {
        return Err(QssError::Empty);
    }
    let conflicts = ConflictAnalysis::of(net);
    let choices: Vec<(PlaceId, Vec<TransitionId>)> = conflicts.choices.clone();

    let mut required: u128 = 1;
    for (_, outs) in &choices {
        required = required.saturating_mul(outs.len() as u128);
        if required > options.max_allocations {
            return Err(QssError::TooManyAllocations {
                required,
                limit: options.max_allocations,
            });
        }
    }

    let mut allocations = Vec::with_capacity(required as usize);
    let mut cursor = vec![0usize; choices.len()];
    loop {
        let mut chosen = Vec::with_capacity(choices.len());
        let mut excluded = Vec::new();
        for (slot, (place, outs)) in choices.iter().enumerate() {
            let pick = outs[cursor[slot]];
            chosen.push((*place, pick));
            for &t in outs {
                if t != pick {
                    excluded.push(t);
                }
            }
        }
        excluded.sort();
        excluded.dedup();
        allocations.push(TAllocation {
            choices: chosen,
            excluded,
        });
        // Advance the mixed-radix counter.
        let mut slot = 0;
        loop {
            if slot == choices.len() {
                return Ok(allocations);
            }
            cursor[slot] += 1;
            if cursor[slot] < choices[slot].1.len() {
                break;
            }
            cursor[slot] = 0;
            slot += 1;
        }
        if choices.is_empty() {
            return Ok(allocations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcpn_petri::gallery;

    #[test]
    fn conflict_free_net_has_exactly_one_allocation() {
        let net = gallery::figure2();
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 1);
        assert!(allocations[0].choices().is_empty());
        assert!(allocations[0].excluded_transitions().is_empty());
        assert_eq!(
            allocations[0].allocated_set(&net).len(),
            net.transition_count()
        );
    }

    #[test]
    fn figure5_allocations_match_paper() {
        let net = gallery::figure5();
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 2);
        let t2 = net.transition_by_name("t2").unwrap();
        let t3 = net.transition_by_name("t3").unwrap();
        let p1 = net.place_by_name("p1").unwrap();
        // A1 keeps t2 (excludes t3), A2 keeps t3 (excludes t2).
        let a1 = allocations.iter().find(|a| a.allocates(t2)).unwrap();
        let a2 = allocations.iter().find(|a| a.allocates(t3)).unwrap();
        assert_eq!(a1.excluded_transitions(), &[t3]);
        assert_eq!(a2.excluded_transitions(), &[t2]);
        assert_eq!(a1.chosen_at(p1), Some(t2));
        assert_eq!(a2.chosen_at(p1), Some(t3));
        // A1 = {t1,t2,t4,t5,t6,t7,t8,t9}: eight transitions.
        assert_eq!(a1.allocated_set(&net).len(), 8);
        assert!(a1.describe(&net).contains("p1->t2"));
        assert!(a1.to_string().starts_with('['));
    }

    #[test]
    fn allocations_multiply_across_choices() {
        let net = gallery::choice_chain(4);
        let allocations = enumerate_allocations(&net, AllocationOptions::default()).unwrap();
        assert_eq!(allocations.len(), 16);
        // Every allocation excludes exactly one transition per choice.
        for a in &allocations {
            assert_eq!(a.excluded_transitions().len(), 4);
        }
    }

    #[test]
    fn allocation_limit_is_enforced() {
        let net = gallery::choice_chain(5);
        let err = enumerate_allocations(
            &net,
            AllocationOptions {
                max_allocations: 16,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            QssError::TooManyAllocations {
                required: 32,
                limit: 16
            }
        ));
    }

    #[test]
    fn non_free_choice_nets_are_rejected() {
        let net = gallery::figure1b();
        let err = enumerate_allocations(&net, AllocationOptions::default()).unwrap_err();
        assert!(matches!(err, QssError::NotFreeChoice { .. }));
    }

    #[test]
    fn empty_net_is_rejected() {
        let net = fcpn_petri::NetBuilder::new("empty").build().unwrap();
        assert!(matches!(
            enumerate_allocations(&net, AllocationOptions::default()),
            Err(QssError::Empty)
        ));
    }
}
