//! # fcpn-qss — quasi-static scheduling of Free-Choice Petri Nets
//!
//! This crate implements the central contribution of *Synthesis of Embedded Software
//! Using Free-Choice Petri Nets* (Sgroi, Lavagno, Watanabe, Sangiovanni-Vincentelli,
//! DAC 1999): deciding whether a Free-Choice Petri Net is **quasi-statically
//! schedulable** and, when it is, producing a **valid schedule** — one finite complete
//! cycle for every possible resolution of the data-dependent choices — from which the
//! companion crate `fcpn-codegen` synthesises C tasks.
//!
//! The algorithm follows the paper's three steps:
//!
//! 1. **T-allocations / T-reductions** ([`enumerate_allocations`], [`TReduction`]):
//!    decompose the net into conflict-free components, one per way of statically
//!    resolving the choices, using the modified Hack reduction that tolerates source and
//!    sink transitions.
//! 2. **Component schedulability** ([`check_component`], Definition 3.5): each component
//!    must be consistent, cover every input (source transition) with a T-invariant, and
//!    admit a deadlock-free simulation of that invariant.
//! 3. **Valid schedule** ([`quasi_static_schedule`], Theorem 3.1): the net is schedulable
//!    iff every component is; the valid schedule collects the component cycles.
//!
//! ```
//! use fcpn_petri::gallery;
//! use fcpn_qss::{quasi_static_schedule, QssOptions, QssOutcome};
//!
//! # fn main() -> Result<(), fcpn_qss::QssError> {
//! // Figure 3a of the paper is schedulable, figure 3b is not.
//! let good = quasi_static_schedule(&gallery::figure3a(), &QssOptions::default())?;
//! assert!(good.is_schedulable());
//! let bad = quasi_static_schedule(&gallery::figure3b(), &QssOptions::default())?;
//! assert!(matches!(bad, QssOutcome::NotSchedulable(_)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
mod allocation;
mod error;
mod reduction;
mod schedulability;
mod schedule;

pub use algorithm::{
    is_schedulable, quasi_static_schedule, quasi_static_schedule_naive, ComponentDiagnostic,
    NotSchedulableReport, QssOptions, QssOutcome,
};
pub use allocation::{
    allocation_iter, allocation_iter_gray, enumerate_allocations, AllocationIter,
    AllocationOptions, GrayAllocationIter, TAllocation,
};
pub use error::{QssError, Result};
pub use reduction::{ReductionStep, ReductionWorkspace, TReduction};
pub use schedulability::{
    check_component, check_component_naive_with, check_component_with, simulate_cycle,
    ComponentCache, ComponentChecker, ComponentFailure, ComponentVerdict, NaiveComponentCache,
};
pub use schedule::{FiniteCompleteCycle, ValidSchedule};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TAllocation>();
        assert_send_sync::<TReduction>();
        assert_send_sync::<ValidSchedule>();
        assert_send_sync::<QssError>();
        assert_send_sync::<QssOutcome>();
    }
}
