//! The top-level quasi-static scheduling algorithm (Section 3, Steps 1–3).
//!
//! The production sweep walks the allocation space in gray-code order on the
//! zero-allocation pipeline (workspace reductions, fingerprint-keyed component cache)
//! and, with [`QssOptions::threads`] > 1, shards contiguous gray ranges across worker
//! threads; per-allocation results carry their seed (counting-order) rank and are merged
//! back into that order, so the outcome — verdict, cycle order, diagnostics order — is
//! bit-for-bit identical to the seed scheduler for **any** thread count. The seed
//! pipeline itself (counting-order enumeration, fresh `BTreeSet` reductions, `Vec`-keyed
//! cache, dense Farkas) is retained as [`quasi_static_schedule_naive`], the baseline the
//! `qss_pipeline` benchmark and the equivalence suite measure against.

use crate::{
    allocation_iter, allocation_iter_gray, check_component_naive_with, AllocationOptions,
    ComponentCache, ComponentChecker, ComponentFailure, ComponentVerdict, FiniteCompleteCycle,
    GrayAllocationIter, NaiveComponentCache, ReductionWorkspace, Result, TReduction, ValidSchedule,
};
use fcpn_petri::cancel::{CancelGate, CancelToken, Cancelled};
use fcpn_petri::{MemoryBudget, PetriNet, TransitionId};
use std::fmt;

/// Options for the quasi-static scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QssOptions {
    /// Limits for T-allocation enumeration (exponential in the number of choices).
    pub allocation: AllocationOptions,
    /// Share a [`ComponentCache`] across the T-reductions, so structurally identical
    /// components (ubiquitous in nets with symmetric choices) reuse the invariant basis
    /// and simulated cycle instead of re-running the Farkas analysis per allocation.
    /// The verdict is identical either way; disabling is only useful for benchmarking
    /// the cache itself.
    pub reuse_component_cache: bool,
    /// Number of worker threads for the allocation sweep. With `threads > 1` the
    /// gray-code allocation space is split into contiguous ranges, one per worker (each
    /// with its own reduction workspace and component cache), and the per-allocation
    /// results are merged back into seed order — the outcome is bit-for-bit identical
    /// for any thread count. `0` and `1` both mean sequential.
    pub threads: usize,
    /// Cooperative cancellation: every sweep worker polls this token between
    /// allocations and the whole sweep returns
    /// [`QssError::Cancelled`](crate::QssError::Cancelled) when it fires. The default
    /// ([`CancelToken::never`]) is free and never fires; an armed token that never
    /// fires leaves the outcome bit-for-bit identical. The retained seed pipeline
    /// ([`quasi_static_schedule_naive`]) deliberately ignores it — it is the oracle the
    /// production sweep is measured against, not a service entry point.
    pub cancel: CancelToken,
    /// Byte budget for the sweep. The scheduler charges a canonical cost model — one
    /// net-sized workspace charge up front, then the retained per-allocation results in
    /// seed (counting) order after the merge — so the same net under the same budget
    /// fails with the same [`QssError::ResourceExhausted`](crate::QssError) for **any**
    /// thread count; worker-local scratch (component caches, gray-range state) is
    /// bounded by the allocation limit and not charged. The default
    /// ([`MemoryBudget::unlimited`]) is free and never exhausts; an armed budget that
    /// never exhausts leaves the outcome bit-for-bit identical. The retained seed
    /// pipeline ignores it, like the cancellation token.
    pub memory: MemoryBudget,
}

impl Default for QssOptions {
    fn default() -> Self {
        QssOptions {
            allocation: AllocationOptions::default(),
            reuse_component_cache: true,
            threads: 1,
            cancel: CancelToken::never(),
            memory: MemoryBudget::unlimited(),
        }
    }
}

/// Diagnosis of a single non-schedulable component, with enough context to explain the
/// failure to the designer (the paper's requirement that the designer be notified that no
/// bounded-memory implementation exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDiagnostic {
    /// Human-readable description of the choice resolution of the failing component.
    pub allocation: String,
    /// Parent transitions that survive in the failing component.
    pub transitions: Vec<TransitionId>,
    /// The reason the component fails Definition 3.5.
    pub failure: ComponentFailure,
}

/// Report returned when the net is not quasi-statically schedulable: every failing
/// T-reduction is listed with its diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSchedulableReport {
    /// Total number of T-reductions examined.
    pub components_examined: usize,
    /// Diagnostics for the failing components.
    pub failures: Vec<ComponentDiagnostic>,
}

impl fmt::Display for NotSchedulableReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} conflict-free components are not statically schedulable",
            self.failures.len(),
            self.components_examined
        )
    }
}

/// Outcome of the quasi-static scheduling algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QssOutcome {
    /// The net is schedulable; the valid schedule has one finite complete cycle per
    /// T-reduction (Theorem 3.1).
    Schedulable(ValidSchedule),
    /// The net is not schedulable; no implementation can run forever in bounded memory.
    NotSchedulable(NotSchedulableReport),
}

impl QssOutcome {
    /// Returns the schedule if the net was schedulable.
    pub fn schedule(self) -> Option<ValidSchedule> {
        match self {
            QssOutcome::Schedulable(s) => Some(s),
            QssOutcome::NotSchedulable(_) => None,
        }
    }

    /// Returns `true` if the net was schedulable.
    pub fn is_schedulable(&self) -> bool {
        matches!(self, QssOutcome::Schedulable(_))
    }
}

/// Runs the complete quasi-static scheduling algorithm of the paper on a Free-Choice net:
///
/// 1. enumerate the T-allocations and compute the T-reduction of each (Step 1);
/// 2. check that every reduction is statically schedulable (Step 2, Definition 3.5);
/// 3. if so, assemble the valid schedule from the component cycles (Step 3,
///    Theorem 3.1); otherwise report why each failing component cannot execute forever in
///    bounded memory.
///
/// # Errors
///
/// Returns [`QssError::NotFreeChoice`](crate::QssError::NotFreeChoice),
/// [`QssError::Empty`](crate::QssError::Empty) or
/// [`QssError::TooManyAllocations`](crate::QssError::TooManyAllocations) if the input is
/// outside the algorithm's domain — these
/// are input errors, distinct from the legitimate [`QssOutcome::NotSchedulable`] verdict.
/// Returns [`QssError::Cancelled`](crate::QssError::Cancelled) when `options.cancel`
/// fires mid-sweep and [`QssError::ResourceExhausted`](crate::QssError::ResourceExhausted)
/// when a charge against `options.memory` fails; the partial sweep is discarded either
/// way — a resource violation is an error, never a silently truncated verdict.
///
/// # Examples
///
/// ```
/// use fcpn_petri::gallery;
/// use fcpn_qss::{quasi_static_schedule, QssOptions, QssOutcome};
///
/// # fn main() -> Result<(), fcpn_qss::QssError> {
/// let net = gallery::figure4();
/// let outcome = quasi_static_schedule(&net, &QssOptions::default())?;
/// let QssOutcome::Schedulable(schedule) = outcome else { panic!("figure 4 is schedulable") };
/// assert_eq!(schedule.describe(&net), "{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}");
/// # Ok(())
/// # }
/// ```
pub fn quasi_static_schedule(net: &PetriNet, options: &QssOptions) -> Result<QssOutcome> {
    // T-allocations are streamed in gray-code order, not materialised: peak memory stays
    // O(choices) even though the number of allocations is exponential in the number of
    // choices, and consecutive allocations differ in a single choice so the pipeline's
    // per-allocation state (loser tails, workspace flags) changes by a delta.
    let allocations = allocation_iter_gray(net, options.allocation)?;
    let total = allocations.total();
    // One net-sized charge covers the reduction workspace and checker scratch (both
    // are O(transitions + places)); per-result charges follow in seed order below.
    // Charging thread-count-invariant quantities only keeps exhaustion deterministic.
    let mut meter = options.memory.meter();
    meter.charge(
        (net.transition_count() + net.place_count()) as u64 * 48,
        "schedule-workspace",
    )?;
    let threads = options
        .threads
        .clamp(1, usize::MAX)
        .min(total.max(1) as usize);
    let mut results: Vec<(u128, SweepItem)> = if threads > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let start = total * w as u128 / threads as u128;
                    let end = total * (w as u128 + 1) / threads as u128;
                    let chunk = allocations.clone().range(start, end);
                    scope.spawn(move || sweep_range(net, chunk, options))
                })
                .collect();
            let mut merged = Vec::with_capacity(total as usize);
            let mut cancelled = false;
            for handle in handles {
                // Join every worker before reporting the cancellation — the scope must
                // not be poisoned by an early return while threads still run.
                match handle.join().expect("sweep worker panicked") {
                    Ok(chunk) => merged.extend(chunk),
                    Err(Cancelled) => cancelled = true,
                }
            }
            if cancelled {
                Err(Cancelled)
            } else {
                Ok(merged)
            }
        })
    } else {
        sweep_range(net, allocations, options)
    }?;
    // Merge back into the seed (counting) enumeration order: the public outcome is
    // bit-for-bit the seed scheduler's regardless of sweep order or thread count.
    results.sort_by_key(|&(rank, _)| rank);
    let components_examined = results.len();
    let mut cycles = Vec::new();
    let mut failures = Vec::new();
    for (_, item) in results {
        // The retained result bytes, charged in seed order — identical for any thread
        // count, so an exhausted budget fails at the same allocation with the same
        // error whether the sweep was sequential or sharded.
        let item_bytes = match &item {
            SweepItem::Cycle(cycle) => (cycle.sequence.len() + cycle.counts.len()) * 8 + 64,
            SweepItem::Failure(diagnostic) => {
                diagnostic.allocation.len() + diagnostic.transitions.len() * 8 + 64
            }
        };
        meter.charge(item_bytes as u64, "schedule-results")?;
        match item {
            SweepItem::Cycle(cycle) => cycles.push(*cycle),
            SweepItem::Failure(diagnostic) => failures.push(*diagnostic),
        }
    }
    if failures.is_empty() {
        Ok(QssOutcome::Schedulable(ValidSchedule { cycles }))
    } else {
        Ok(QssOutcome::NotSchedulable(NotSchedulableReport {
            components_examined,
            failures,
        }))
    }
}

/// One per-allocation result of the sweep, tagged with the allocation's seed rank.
enum SweepItem {
    Cycle(Box<FiniteCompleteCycle>),
    Failure(Box<ComponentDiagnostic>),
}

/// Sweeps one contiguous gray range of the allocation space on the zero-allocation
/// pipeline: a reusable [`ReductionWorkspace`], a [`ComponentChecker`] and (when
/// enabled) a range-local [`ComponentCache`].
///
/// Polls `options.cancel` between allocations (a component check costs microseconds to
/// milliseconds, so a small polling stride keeps the cancellation latency far below the
/// service-level bound) and abandons the range with [`Cancelled`] when it fires.
fn sweep_range(
    net: &PetriNet,
    range: GrayAllocationIter,
    options: &QssOptions,
) -> Result<Vec<(u128, SweepItem)>, Cancelled> {
    let mut checker = ComponentChecker::new(net);
    let mut workspace = ReductionWorkspace::new();
    let mut cache = ComponentCache::default();
    let mut cancel_gate = CancelGate::new(16);
    let mut out = Vec::with_capacity(range.remaining() as usize);
    for (rank, allocation) in range {
        cancel_gate.check(&options.cancel)?;
        if !options.reuse_component_cache {
            cache.clear();
        }
        let verdict = checker.check(&allocation, &mut workspace, &mut cache);
        let item = match verdict {
            ComponentVerdict::Schedulable(cycle) => SweepItem::Cycle(Box::new(cycle)),
            ComponentVerdict::NotSchedulable(failure) => {
                SweepItem::Failure(Box::new(ComponentDiagnostic {
                    allocation: allocation.describe(net),
                    transitions: workspace.kept_transitions().to_vec(),
                    failure,
                }))
            }
        };
        out.push((rank, item));
    }
    Ok(out)
}

/// The seed scheduling pipeline, retained end to end: counting-order enumeration
/// ([`allocation_iter`]), fresh-`BTreeSet` reductions ([`TReduction::compute`]), the
/// `Vec<u64>`-keyed component cache and the dense Farkas elimination
/// ([`check_component_naive_with`]). Always sequential. The outcome is bit-for-bit
/// identical to [`quasi_static_schedule`]'s — pinned by the equivalence suite — and the
/// `qss_pipeline` benchmark measures the pipeline win against it.
///
/// # Errors
///
/// Same as [`quasi_static_schedule`].
pub fn quasi_static_schedule_naive(net: &PetriNet, options: &QssOptions) -> Result<QssOutcome> {
    let allocations = allocation_iter(net, options.allocation)?;
    let mut cache = NaiveComponentCache::default();
    let mut cycles = Vec::new();
    let mut failures = Vec::new();
    let mut components_examined = 0usize;
    for allocation in allocations {
        components_examined += 1;
        let reduction = TReduction::compute(net, allocation)?;
        if !options.reuse_component_cache {
            cache = NaiveComponentCache::default();
        }
        let verdict = check_component_naive_with(net, &reduction, &mut cache);
        match verdict {
            ComponentVerdict::Schedulable(cycle) => cycles.push(cycle),
            ComponentVerdict::NotSchedulable(failure) => failures.push(ComponentDiagnostic {
                allocation: reduction.allocation.describe(net),
                transitions: reduction.parent_transitions(),
                failure,
            }),
        }
    }
    if failures.is_empty() {
        Ok(QssOutcome::Schedulable(ValidSchedule { cycles }))
    } else {
        Ok(QssOutcome::NotSchedulable(NotSchedulableReport {
            components_examined,
            failures,
        }))
    }
}

/// Convenience wrapper: returns `true` when the marked net is quasi-statically
/// schedulable (Definition 3.2).
///
/// # Errors
///
/// Same input errors as [`quasi_static_schedule`].
pub fn is_schedulable(net: &PetriNet, options: &QssOptions) -> Result<bool> {
    Ok(quasi_static_schedule(net, options)?.is_schedulable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QssError;
    use fcpn_petri::gallery;

    #[test]
    fn figure3a_is_schedulable_with_two_cycles() {
        let net = gallery::figure3a();
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).unwrap();
        assert!(outcome.is_schedulable());
        let schedule = outcome.schedule().unwrap();
        assert_eq!(schedule.cycle_count(), 2);
        assert_eq!(schedule.describe(&net), "{(t1 t2 t4), (t1 t3 t5)}");
    }

    #[test]
    fn figure3b_is_not_schedulable() {
        let net = gallery::figure3b();
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).unwrap();
        match outcome {
            QssOutcome::NotSchedulable(report) => {
                assert_eq!(report.components_examined, 2);
                assert_eq!(report.failures.len(), 2);
                assert!(report.to_string().contains("2 of 2"));
            }
            QssOutcome::Schedulable(_) => panic!("figure 3b must not be schedulable"),
        }
        assert!(!is_schedulable(&net, &QssOptions::default()).unwrap());
    }

    #[test]
    fn figure5_schedule_matches_paper() {
        let net = gallery::figure5();
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(
            schedule.describe(&net),
            "{(t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6), (t1 t3 t5 t7 t7 t8 t9 t6)}"
        );
    }

    #[test]
    fn figure7_is_not_schedulable_with_inconsistency_diagnostics() {
        let net = gallery::figure7();
        let outcome = quasi_static_schedule(&net, &QssOptions::default()).unwrap();
        let QssOutcome::NotSchedulable(report) = outcome else {
            panic!("figure 7 must not be schedulable");
        };
        assert_eq!(report.failures.len(), 2);
        for failure in &report.failures {
            assert!(matches!(
                failure.failure,
                ComponentFailure::Inconsistent { .. }
            ));
            assert!(!failure.transitions.is_empty());
            assert!(failure.allocation.contains("p1->"));
        }
    }

    #[test]
    fn marked_graphs_degenerate_to_static_scheduling() {
        let net = gallery::figure2();
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(schedule.cycle_count(), 1);
        assert_eq!(schedule.cycles[0].counts, vec![4, 2, 1]);
        assert!(schedule.is_valid(&net));
    }

    #[test]
    fn non_free_choice_input_is_an_error_not_a_verdict() {
        let net = gallery::figure1b();
        assert!(matches!(
            quasi_static_schedule(&net, &QssOptions::default()),
            Err(QssError::NotFreeChoice { .. })
        ));
    }

    #[test]
    fn pre_fired_token_cancels_the_sweep_at_any_thread_count() {
        let net = gallery::choice_chain(6);
        let cancel = CancelToken::new();
        cancel.cancel();
        for threads in [1usize, 2, 4] {
            let options = QssOptions {
                threads,
                cancel: cancel.clone(),
                ..QssOptions::default()
            };
            assert!(matches!(
                quasi_static_schedule(&net, &options),
                Err(QssError::Cancelled)
            ));
        }
    }

    #[test]
    fn armed_but_never_firing_token_is_bit_identical() {
        let net = gallery::choice_chain(5);
        let baseline = quasi_static_schedule(&net, &QssOptions::default()).unwrap();
        for threads in [1usize, 2, 4] {
            let options = QssOptions {
                threads,
                cancel: CancelToken::new(),
                ..QssOptions::default()
            };
            assert_eq!(
                quasi_static_schedule(&net, &options).unwrap(),
                baseline,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn choice_chain_produces_exponentially_many_cycles() {
        let net = gallery::choice_chain(4);
        let schedule = quasi_static_schedule(&net, &QssOptions::default())
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(schedule.cycle_count(), 16);
        for cycle in &schedule.cycles {
            assert!(net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence));
        }
    }
}
