//! T-reductions: the Conflict-Free components obtained by applying the Reduction
//! Algorithm to a T-allocation (Definition 3.4 and Step 1 of Section 3).
//!
//! The algorithm is Hack's MG-decomposition modified — exactly as in the paper — to
//! tolerate source and sink transitions, which embedded-system models need to represent
//! interaction with the environment.
//!
//! Two entry points compute the same reduction: [`TReduction::compute`] is the seed
//! implementation (fresh `BTreeSet`s and an always-on trace per call) and
//! [`TReduction::compute_in`] is the scheduler's hot path — it runs the identical
//! fixpoint on a reusable [`ReductionWorkspace`] (flag arrays and scratch buffers that
//! are allocated once per sweep, not once per allocation) with trace recording opt-in.
//! The equivalence suite pins the two against each other, traces included.

use crate::{Result, TAllocation};
use fcpn_petri::{PetriNet, PlaceId, SubnetMap, TransitionId};
use std::collections::BTreeSet;
use std::fmt;

/// One step of the Reduction Algorithm, recorded for traceability (Figure 6 of the paper
/// walks these steps for the net of Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionStep {
    /// A transition was removed because the allocation does not choose it.
    RemoveUnallocated(TransitionId),
    /// A place was removed because its producer was removed and no keep-condition held.
    RemovePlace(PlaceId),
    /// A place was kept (as a source place of the component) because its consumer has
    /// another non-source input place — condition (b)(ii) of the algorithm.
    KeepPlaceAsSource(PlaceId),
    /// A transition was removed because all of its input places were removed or are
    /// unproducible source places — conditions (c)(i)/(c)(ii).
    RemoveStarvedTransition(TransitionId),
}

impl fmt::Display for ReductionStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionStep::RemoveUnallocated(t) => write!(f, "remove {t} (unallocated)"),
            ReductionStep::RemovePlace(p) => write!(f, "remove {p}"),
            ReductionStep::KeepPlaceAsSource(p) => write!(f, "keep {p} as source place"),
            ReductionStep::RemoveStarvedTransition(t) => write!(f, "remove {t} (starved)"),
        }
    }
}

/// A T-reduction: the conflict-free subnet active when the conflicts are resolved as the
/// associated T-allocation prescribes.
#[derive(Debug, Clone)]
pub struct TReduction {
    /// The allocation this reduction corresponds to.
    pub allocation: TAllocation,
    /// The reduced net (a conflict-free net, possibly made of several disjoint subnets).
    pub net: PetriNet,
    /// Mapping from the reduced net's identifiers back to the parent net.
    pub map: SubnetMap,
    /// The steps the Reduction Algorithm took, in order.
    pub trace: Vec<ReductionStep>,
}

impl TReduction {
    /// Computes the T-reduction of `parent` under `allocation` by running the Reduction
    /// Algorithm.
    ///
    /// # Errors
    ///
    /// Propagates [`fcpn_petri::PetriError`] from sub-net construction (which cannot fail
    /// for identifiers produced here).
    pub fn compute(parent: &PetriNet, allocation: TAllocation) -> Result<TReduction> {
        let mut kept_transitions: BTreeSet<TransitionId> = parent.transitions().collect();
        let mut kept_places: BTreeSet<PlaceId> = parent.places().collect();
        let mut trace = Vec::new();

        // Step 2(a): remove every transition the allocation does not choose.
        let mut removed_transitions: Vec<TransitionId> = Vec::new();
        for &t in allocation.excluded_transitions() {
            kept_transitions.remove(&t);
            removed_transitions.push(t);
            trace.push(ReductionStep::RemoveUnallocated(t));
        }

        // Steps 2(b)-(d): propagate removals until a fixpoint.
        let mut worklist: Vec<TransitionId> = removed_transitions;
        while let Some(removed) = worklist.pop() {
            // (b) Examine the successor places of the removed transition.
            for &(s, _) in parent.outputs(removed) {
                if !kept_places.contains(&s) {
                    continue;
                }
                // (b)(i) keep the place if it still has another (kept) producer.
                let has_other_producer = parent
                    .producers(s)
                    .iter()
                    .any(|&(t, _)| t != removed && kept_transitions.contains(&t));
                if has_other_producer {
                    continue;
                }
                // (b)(ii) keep the place (as a source place of the component) if some kept
                // consumer of it has another kept, non-source input place.
                let keeps_as_source = parent.consumers(s).iter().any(|&(consumer, _)| {
                    kept_transitions.contains(&consumer)
                        && parent.inputs(consumer).iter().any(|&(other, _)| {
                            other != s
                                && kept_places.contains(&other)
                                && has_kept_producer(parent, other, &kept_transitions)
                        })
                });
                if keeps_as_source {
                    trace.push(ReductionStep::KeepPlaceAsSource(s));
                    continue;
                }
                kept_places.remove(&s);
                trace.push(ReductionStep::RemovePlace(s));
                // (c) A consumer of the removed place is itself removed when it has no
                // remaining input places, or when all of its remaining inputs are
                // unproducible source places (which are then removed with it).
                for &(consumer, _) in parent.consumers(s) {
                    if !kept_transitions.contains(&consumer) {
                        continue;
                    }
                    let remaining: Vec<PlaceId> = parent
                        .inputs(consumer)
                        .iter()
                        .map(|&(p, _)| p)
                        .filter(|p| kept_places.contains(p))
                        .collect();
                    let all_sources = remaining
                        .iter()
                        .all(|&p| !has_kept_producer(parent, p, &kept_transitions));
                    if remaining.is_empty() || all_sources {
                        if !remaining.is_empty() {
                            for p in remaining {
                                kept_places.remove(&p);
                                trace.push(ReductionStep::RemovePlace(p));
                            }
                        }
                        kept_transitions.remove(&consumer);
                        trace.push(ReductionStep::RemoveStarvedTransition(consumer));
                        worklist.push(consumer);
                    }
                }
            }
        }

        let places: Vec<PlaceId> = kept_places.into_iter().collect();
        let transitions: Vec<TransitionId> = kept_transitions.into_iter().collect();
        let (net, map) = parent.induced_subnet(&places, &transitions)?;
        Ok(TReduction {
            allocation,
            net,
            map,
            trace,
        })
    }

    /// Computes the same T-reduction as [`TReduction::compute`] on a reusable
    /// [`ReductionWorkspace`]: the fixpoint runs on the workspace's flag arrays and
    /// scratch buffers (no per-call `BTreeSet`s), and the step trace is only recorded
    /// when `record_trace` is set (the scheduler never reads it; diagnostics callers
    /// opt back in).
    ///
    /// The reduced net, map and (when recorded) trace are identical to
    /// [`TReduction::compute`]'s — pinned by the seeded equivalence suite.
    ///
    /// # Errors
    ///
    /// Same as [`TReduction::compute`].
    pub fn compute_in(
        parent: &PetriNet,
        allocation: TAllocation,
        workspace: &mut ReductionWorkspace,
        record_trace: bool,
    ) -> Result<TReduction> {
        workspace.reduce(parent, &allocation, record_trace);
        let (net, map) =
            parent.induced_subnet(workspace.kept_places(), workspace.kept_transitions())?;
        Ok(TReduction {
            allocation,
            net,
            map,
            trace: workspace.trace.clone(),
        })
    }

    /// The parent-net transitions that survive in this reduction, ascending.
    pub fn parent_transitions(&self) -> Vec<TransitionId> {
        self.map.transition_to_parent.clone()
    }

    /// The parent-net places that survive in this reduction, ascending.
    pub fn parent_places(&self) -> Vec<PlaceId> {
        self.map.place_to_parent.clone()
    }

    /// Translates a firing sequence of the reduced net back to parent-net transitions.
    pub fn sequence_to_parent(&self, sequence: &[TransitionId]) -> Vec<TransitionId> {
        sequence
            .iter()
            .map(|&t| self.map.parent_transition(t))
            .collect()
    }

    /// Renders the trace with parent-net names, one step per line (Figure 6 style).
    pub fn describe_trace(&self, parent: &PetriNet) -> String {
        self.trace
            .iter()
            .enumerate()
            .map(|(i, step)| {
                let text = match step {
                    ReductionStep::RemoveUnallocated(t) => {
                        format!("remove {} (unallocated)", parent.transition_name(*t))
                    }
                    ReductionStep::RemovePlace(p) => {
                        format!("remove {}", parent.place_name(*p))
                    }
                    ReductionStep::KeepPlaceAsSource(p) => {
                        format!("keep {} as source place", parent.place_name(*p))
                    }
                    ReductionStep::RemoveStarvedTransition(t) => {
                        format!("remove {} (starved)", parent.transition_name(*t))
                    }
                };
                format!("step {}) {}", i + 1, text)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn has_kept_producer(
    parent: &PetriNet,
    place: PlaceId,
    kept_transitions: &BTreeSet<TransitionId>,
) -> bool {
    parent
        .producers(place)
        .iter()
        .any(|&(t, _)| kept_transitions.contains(&t))
}

/// Reusable scratch state for the Reduction Algorithm: flag arrays over the parent net,
/// the removal worklist, and the kept-node lists with their child-index ranks.
///
/// One workspace serves an entire allocation sweep: after the first call every buffer is
/// at capacity and [`ReductionWorkspace::reduce`] allocates nothing. After a `reduce`
/// the workspace *is* the reduction — the kept lists double as the
/// [`SubnetMap`] arrays (child index `i` is the `i`-th kept parent node), so the
/// scheduler can fingerprint, map and diagnose a component without ever materialising
/// the reduced [`PetriNet`] (which [`TReduction::compute_in`] still builds for callers
/// that need the net itself).
#[derive(Debug, Default)]
pub struct ReductionWorkspace {
    kept_transitions: Vec<bool>,
    kept_places: Vec<bool>,
    worklist: Vec<TransitionId>,
    remaining: Vec<PlaceId>,
    /// Child index of each kept parent transition (`u32::MAX` for removed ones).
    transition_rank: Vec<u32>,
    /// Child index of each kept parent place (`u32::MAX` for removed ones).
    place_rank: Vec<u32>,
    kept_transition_list: Vec<TransitionId>,
    kept_place_list: Vec<PlaceId>,
    trace: Vec<ReductionStep>,
}

impl ReductionWorkspace {
    /// Creates an empty workspace; buffers grow to the parent net's size on first use.
    pub fn new() -> Self {
        ReductionWorkspace::default()
    }

    /// Runs the Reduction Algorithm for `allocation` over `parent`, leaving the result
    /// in the workspace. The fixpoint, removal order and (when `record_trace` is set)
    /// the trace are identical to [`TReduction::compute`]'s; only the storage differs —
    /// flag arrays and reused buffers instead of fresh `BTreeSet`s per call.
    pub fn reduce(&mut self, parent: &PetriNet, allocation: &TAllocation, record_trace: bool) {
        let nt = parent.transition_count();
        let np = parent.place_count();
        self.kept_transitions.clear();
        self.kept_transitions.resize(nt, true);
        self.kept_places.clear();
        self.kept_places.resize(np, true);
        self.worklist.clear();
        self.trace.clear();

        // Step 2(a): remove every transition the allocation does not choose.
        for &t in allocation.excluded_transitions() {
            self.kept_transitions[t.index()] = false;
            self.worklist.push(t);
            if record_trace {
                self.trace.push(ReductionStep::RemoveUnallocated(t));
            }
        }

        // Steps 2(b)-(d): propagate removals until a fixpoint.
        while let Some(removed) = self.worklist.pop() {
            // (b) Examine the successor places of the removed transition.
            for &(s, _) in parent.outputs(removed) {
                if !self.kept_places[s.index()] {
                    continue;
                }
                // (b)(i) keep the place if it still has another (kept) producer.
                let has_other_producer = parent
                    .producers(s)
                    .iter()
                    .any(|&(t, _)| t != removed && self.kept_transitions[t.index()]);
                if has_other_producer {
                    continue;
                }
                // (b)(ii) keep the place (as a source place of the component) if some
                // kept consumer of it has another kept, non-source input place.
                let keeps_as_source = parent.consumers(s).iter().any(|&(consumer, _)| {
                    self.kept_transitions[consumer.index()]
                        && parent.inputs(consumer).iter().any(|&(other, _)| {
                            other != s
                                && self.kept_places[other.index()]
                                && self.has_kept_producer(parent, other)
                        })
                });
                if keeps_as_source {
                    if record_trace {
                        self.trace.push(ReductionStep::KeepPlaceAsSource(s));
                    }
                    continue;
                }
                self.kept_places[s.index()] = false;
                if record_trace {
                    self.trace.push(ReductionStep::RemovePlace(s));
                }
                // (c) A consumer of the removed place is itself removed when it has no
                // remaining input places, or when all of its remaining inputs are
                // unproducible source places (which are then removed with it).
                for &(consumer, _) in parent.consumers(s) {
                    if !self.kept_transitions[consumer.index()] {
                        continue;
                    }
                    self.remaining.clear();
                    let kept_places = &self.kept_places;
                    self.remaining.extend(
                        parent
                            .inputs(consumer)
                            .iter()
                            .map(|&(p, _)| p)
                            .filter(|p| kept_places[p.index()]),
                    );
                    let all_sources = self
                        .remaining
                        .iter()
                        .all(|&p| !self.has_kept_producer(parent, p));
                    if self.remaining.is_empty() || all_sources {
                        for i in 0..self.remaining.len() {
                            let p = self.remaining[i];
                            self.kept_places[p.index()] = false;
                            if record_trace {
                                self.trace.push(ReductionStep::RemovePlace(p));
                            }
                        }
                        self.kept_transitions[consumer.index()] = false;
                        if record_trace {
                            self.trace
                                .push(ReductionStep::RemoveStarvedTransition(consumer));
                        }
                        self.worklist.push(consumer);
                    }
                }
            }
        }

        // Kept lists in ascending order; ranks map parent index → child index.
        self.transition_rank.clear();
        self.transition_rank.resize(nt, u32::MAX);
        self.place_rank.clear();
        self.place_rank.resize(np, u32::MAX);
        self.kept_transition_list.clear();
        self.kept_place_list.clear();
        for (i, &kept) in self.kept_transitions.iter().enumerate() {
            if kept {
                self.transition_rank[i] = self.kept_transition_list.len() as u32;
                self.kept_transition_list.push(TransitionId::new(i));
            }
        }
        for (i, &kept) in self.kept_places.iter().enumerate() {
            if kept {
                self.place_rank[i] = self.kept_place_list.len() as u32;
                self.kept_place_list.push(PlaceId::new(i));
            }
        }
    }

    fn has_kept_producer(&self, parent: &PetriNet, place: PlaceId) -> bool {
        parent
            .producers(place)
            .iter()
            .any(|&(t, _)| self.kept_transitions[t.index()])
    }

    /// The parent transitions that survived the last [`reduce`](Self::reduce), ascending
    /// (equals the child net's `transition_to_parent` map).
    pub fn kept_transitions(&self) -> &[TransitionId] {
        &self.kept_transition_list
    }

    /// The parent places that survived the last [`reduce`](Self::reduce), ascending
    /// (equals the child net's `place_to_parent` map).
    pub fn kept_places(&self) -> &[PlaceId] {
        &self.kept_place_list
    }

    /// `true` if the parent transition survived the last reduction.
    pub fn keeps_transition(&self, parent: TransitionId) -> bool {
        self.kept_transitions[parent.index()]
    }

    /// The child index of a surviving parent transition, if it survived.
    pub fn child_transition(&self, parent: TransitionId) -> Option<TransitionId> {
        match self.transition_rank[parent.index()] {
            u32::MAX => None,
            rank => Some(TransitionId::new(rank as usize)),
        }
    }

    /// The child index of a surviving parent place, if it survived.
    pub fn child_place(&self, parent: PlaceId) -> Option<PlaceId> {
        match self.place_rank[parent.index()] {
            u32::MAX => None,
            rank => Some(PlaceId::new(rank as usize)),
        }
    }

    /// The steps recorded by the last [`reduce`](Self::reduce) (empty unless trace
    /// recording was requested).
    pub fn trace(&self) -> &[ReductionStep] {
        &self.trace
    }

    /// Materialises the last reduction's [`SubnetMap`] (one clone of each kept list).
    pub fn subnet_map(&self) -> SubnetMap {
        SubnetMap {
            place_to_parent: self.kept_place_list.clone(),
            transition_to_parent: self.kept_transition_list.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_allocations, AllocationOptions};
    use fcpn_petri::gallery;

    fn reductions_of(net: &PetriNet) -> Vec<TReduction> {
        enumerate_allocations(net, AllocationOptions::default())
            .unwrap()
            .into_iter()
            .map(|a| TReduction::compute(net, a).unwrap())
            .collect()
    }

    fn names(net: &PetriNet, r: &TReduction) -> (Vec<String>, Vec<String>) {
        let ts = r
            .parent_transitions()
            .iter()
            .map(|&t| net.transition_name(t).to_string())
            .collect();
        let ps = r
            .parent_places()
            .iter()
            .map(|&p| net.place_name(p).to_string())
            .collect();
        (ts, ps)
    }

    #[test]
    fn figure5_reductions_match_paper() {
        let net = gallery::figure5();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 2);
        let t2 = net.transition_by_name("t2").unwrap();
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        let r2 = reductions
            .iter()
            .find(|r| !r.allocation.allocates(t2))
            .unwrap();
        let (t_r1, p_r1) = names(&net, r1);
        // R1 (choose t2): keep t1 t2 t4 t6 t8 t9 and p1 p2 p4 p7 (figure 6 end state).
        assert_eq!(t_r1, vec!["t1", "t2", "t4", "t6", "t8", "t9"]);
        assert_eq!(p_r1, vec!["p1", "p2", "p4", "p7"]);
        let (t_r2, p_r2) = names(&net, r2);
        // R2 (choose t3): keep t1 t3 t5 t6 t7 t8 t9 and p1 p3 p4 p5 p6 p7.
        assert_eq!(t_r2, vec!["t1", "t3", "t5", "t6", "t7", "t8", "t9"]);
        assert_eq!(p_r2, vec!["p1", "p3", "p4", "p5", "p6", "p7"]);
        // Both reductions are conflict-free nets, as the paper requires by construction.
        assert!(r1.net.is_conflict_free());
        assert!(r2.net.is_conflict_free());
    }

    #[test]
    fn figure6_trace_for_r1() {
        // The paper's figure 6 narrates: remove t3 (unallocated), remove p3, remove t5,
        // remove p5 & p6, remove t7.
        let net = gallery::figure5();
        let reductions = reductions_of(&net);
        let t2 = net.transition_by_name("t2").unwrap();
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        let trace = r1.describe_trace(&net);
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("remove t3 (unallocated)"));
        assert!(lines[1].contains("remove p3"));
        assert!(lines[2].contains("remove t5 (starved)"));
        assert!(lines[3].contains("remove p5"));
        assert!(lines[4].contains("remove p6"));
        assert!(lines[5].contains("remove t7 (starved)"));
    }

    #[test]
    fn figure7_reductions_match_paper() {
        let net = gallery::figure7();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 2);
        let t2 = net.transition_by_name("t2").unwrap();
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        let r2 = reductions
            .iter()
            .find(|r| !r.allocation.allocates(t2))
            .unwrap();
        let (t_r1, p_r1) = names(&net, r1);
        // R1 = {t1, t2, t4, t6} with places {p1, p2, p4, p5}; p5 is kept as a source place.
        assert_eq!(t_r1, vec!["t1", "t2", "t4", "t6"]);
        assert_eq!(p_r1, vec!["p1", "p2", "p4", "p5"]);
        assert!(r1
            .trace
            .iter()
            .any(|s| matches!(s, ReductionStep::KeepPlaceAsSource(_))));
        let (t_r2, p_r2) = names(&net, r2);
        // R2 = {t1, t3, t5, t6, t7} with places {p1, p3, p4, p5, p6}; p4 kept as source.
        assert_eq!(t_r2, vec!["t1", "t3", "t5", "t6", "t7"]);
        assert_eq!(p_r2, vec!["p1", "p3", "p4", "p5", "p6"]);
    }

    #[test]
    fn conflict_free_net_reduces_to_itself() {
        let net = gallery::figure2();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 1);
        let r = &reductions[0];
        assert!(r.trace.is_empty());
        assert_eq!(r.net.transition_count(), net.transition_count());
        assert_eq!(r.net.place_count(), net.place_count());
    }

    #[test]
    fn figure3a_reductions_are_the_two_branches() {
        let net = gallery::figure3a();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 2);
        for r in &reductions {
            // Each branch keeps the source, one branch transition and its drain.
            assert_eq!(r.net.transition_count(), 3);
            assert_eq!(r.net.place_count(), 2);
            assert!(r.net.is_conflict_free());
        }
    }

    #[test]
    fn sequences_map_back_to_parent_names() {
        let net = gallery::figure3a();
        let reductions = reductions_of(&net);
        let r = &reductions[0];
        let seq: Vec<TransitionId> = r.net.transitions().collect();
        let parent_seq = r.sequence_to_parent(&seq);
        assert_eq!(parent_seq.len(), 3);
        for (&child, &parent) in seq.iter().zip(parent_seq.iter()) {
            assert_eq!(r.net.transition_name(child), net.transition_name(parent));
        }
    }
}
