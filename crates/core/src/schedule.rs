//! Valid schedules: sets of finite complete cycles, one per resolution of the
//! non-deterministic choices (Definitions 3.1 and 3.2 of the paper).

use crate::TAllocation;
use fcpn_petri::analysis::ConflictAnalysis;
use fcpn_petri::{PetriNet, TransitionId};
use std::fmt;

/// One finite complete cycle of a valid schedule: a firing sequence that starts and ends
/// at the initial marking of the (parent) net under a fixed resolution of the choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteCompleteCycle {
    /// The choice resolution (T-allocation) this cycle corresponds to.
    pub allocation: TAllocation,
    /// The firing sequence, expressed with the parent net's transition identifiers.
    pub sequence: Vec<TransitionId>,
    /// Firing counts per parent transition (the T-invariant realised by the sequence).
    pub counts: Vec<u64>,
    /// Peak token count per parent place while executing the cycle (buffer bound).
    pub buffer_bounds: Vec<u64>,
    /// For every source transition of the parent net, the sub-invariant of this cycle that
    /// covers it (parent-indexed firing counts). Transitions sharing a slice have
    /// *dependent* firing rates; the code generator groups each slice into one software
    /// task (Section 4 of the paper).
    pub source_slices: Vec<(TransitionId, Vec<u64>)>,
}

impl FiniteCompleteCycle {
    /// Length of the firing sequence.
    pub fn length(&self) -> usize {
        self.sequence.len()
    }

    /// Renders the cycle as `(t1 t2 t4)` using the parent net's transition names.
    pub fn describe(&self, net: &PetriNet) -> String {
        format!("({})", net.format_sequence(&self.sequence))
    }
}

/// A valid schedule: a complete set of finite complete cycles — one for every resolution
/// of the free choices — that together guarantee bounded-memory infinite execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidSchedule {
    /// The cycles, in the order their T-allocations were enumerated.
    pub cycles: Vec<FiniteCompleteCycle>,
}

impl ValidSchedule {
    /// Number of cycles (equals the number of T-reductions of the net).
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// The per-place buffer bound implied by the schedule: the maximum peak across all
    /// cycles. A software implementation sizing its channels to these bounds can run any
    /// of the cycles without dynamic allocation.
    pub fn buffer_bounds(&self, net: &PetriNet) -> Vec<u64> {
        let mut bounds = vec![0u64; net.place_count()];
        for cycle in &self.cycles {
            for (i, &b) in cycle.buffer_bounds.iter().enumerate() {
                if b > bounds[i] {
                    bounds[i] = b;
                }
            }
        }
        bounds
    }

    /// Sum of the per-place buffer bounds (the paper's memory-size axis).
    pub fn total_buffer_tokens(&self, net: &PetriNet) -> u64 {
        self.buffer_bounds(net).iter().sum()
    }

    /// Checks the defining property of a valid schedule (Definition 3.1): every cycle is a
    /// finite complete cycle containing every source transition, and at the first
    /// occurrence of any conflicting transition there is, for every equal-conflict peer, a
    /// sibling cycle identical up to that position that fires the peer instead.
    pub fn is_valid(&self, net: &PetriNet) -> bool {
        if self.cycles.is_empty() {
            return false;
        }
        let conflicts = ConflictAnalysis::of(net);
        let sources = net.source_transitions();
        let m0 = net.initial_marking();
        for cycle in &self.cycles {
            if !net.is_finite_complete_cycle(m0, &cycle.sequence) {
                return false;
            }
            for &s in &sources {
                if !cycle.sequence.contains(&s) {
                    return false;
                }
            }
        }
        for cycle in &self.cycles {
            let seq = &cycle.sequence;
            for (j, &t) in seq.iter().enumerate() {
                if seq[..j].contains(&t) {
                    continue; // Definition 3.1 only constrains the first occurrence.
                }
                for peer in conflicts.conflict_peers(t) {
                    let found = self.cycles.iter().any(|other| {
                        other.sequence.len() > j
                            && other.sequence[..j] == seq[..j]
                            && other.sequence[j] == peer
                    });
                    if !found {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Renders the schedule as the paper prints it, e.g.
    /// `{(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}`.
    pub fn describe(&self, net: &PetriNet) -> String {
        let inner: Vec<String> = self.cycles.iter().map(|c| c.describe(net)).collect();
        format!("{{{}}}", inner.join(", "))
    }
}

impl fmt::Display for ValidSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "valid schedule with {} cycle(s)", self.cycles.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{quasi_static_schedule, QssOptions, QssOutcome};
    use fcpn_petri::gallery;

    fn schedule_of(net: &PetriNet) -> ValidSchedule {
        match quasi_static_schedule(net, &QssOptions::default()).unwrap() {
            QssOutcome::Schedulable(s) => s,
            QssOutcome::NotSchedulable(r) => panic!("expected schedulable net: {r:?}"),
        }
    }

    #[test]
    fn figure3a_schedule_is_valid_and_matches_paper() {
        let net = gallery::figure3a();
        let s = schedule_of(&net);
        assert_eq!(s.cycle_count(), 2);
        assert!(s.is_valid(&net));
        let text = s.describe(&net);
        assert!(text.contains("(t1 t2 t4)"));
        assert!(text.contains("(t1 t3 t5)"));
    }

    #[test]
    fn figure4_schedule_matches_paper() {
        let net = gallery::figure4();
        let s = schedule_of(&net);
        assert!(s.is_valid(&net));
        let text = s.describe(&net);
        // The paper prints S = {(t1 t2 t1 t2 t4), (t1 t3 t5 t5)}.
        assert!(text.contains("(t1 t2 t1 t2 t4)"));
        assert!(text.contains("(t1 t3 t5 t5)"));
        let bounds = s.buffer_bounds(&net);
        let p2 = net.place_by_name("p2").unwrap();
        let p3 = net.place_by_name("p3").unwrap();
        assert_eq!(bounds[p2.index()], 2);
        assert_eq!(bounds[p3.index()], 2);
    }

    #[test]
    fn dropping_a_cycle_invalidates_the_schedule() {
        let net = gallery::figure3a();
        let mut s = schedule_of(&net);
        s.cycles.pop();
        assert!(!s.is_valid(&net));
    }

    #[test]
    fn corrupting_a_cycle_invalidates_the_schedule() {
        let net = gallery::figure3a();
        let mut s = schedule_of(&net);
        s.cycles[0].sequence.pop();
        assert!(!s.is_valid(&net));
    }

    #[test]
    fn empty_schedule_is_invalid() {
        let net = gallery::figure3a();
        let s = ValidSchedule { cycles: vec![] };
        assert!(!s.is_valid(&net));
        assert_eq!(s.total_buffer_tokens(&net), 0);
    }

    #[test]
    fn display_mentions_cycle_count() {
        let net = gallery::figure3a();
        let s = schedule_of(&net);
        assert!(s.to_string().contains("2 cycle(s)"));
    }
}
