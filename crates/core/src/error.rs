//! Errors reported by the quasi-static scheduler.

use fcpn_petri::{PetriError, PlaceId};
use fcpn_sdf::SdfError;
use std::fmt;

/// Errors produced while computing T-allocations, T-reductions or valid schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QssError {
    /// The input net is not a Free-Choice net; the offending places are listed.
    ///
    /// Quasi-static schedulability as defined in the paper is only decidable with the
    /// free-choice structure, where the outcome of a choice depends on token values and
    /// never on arrival times.
    NotFreeChoice {
        /// Places violating the free-choice condition.
        violations: Vec<PlaceId>,
    },
    /// The net has no transitions.
    Empty,
    /// The number of T-allocations exceeds the configured enumeration limit.
    ///
    /// The number of allocations is exponential in the number of choices (as the paper
    /// notes in its complexity discussion); callers can raise the limit explicitly.
    TooManyAllocations {
        /// Number of allocations that would have to be enumerated.
        required: u128,
        /// Configured limit.
        limit: u128,
    },
    /// An underlying Petri-net operation failed.
    Petri(PetriError),
    /// An underlying static-scheduling operation failed.
    Sdf(SdfError),
    /// The sweep was abandoned because its [`CancelToken`](fcpn_petri::CancelToken)
    /// fired (explicit cancel or blown deadline) — a caller decision, not a property of
    /// the input net.
    Cancelled,
    /// The sweep was abandoned because a charge against its
    /// [`MemoryBudget`](fcpn_petri::MemoryBudget) failed — like [`QssError::Cancelled`],
    /// a caller-imposed resource decision, not a property of the input net.
    ResourceExhausted(fcpn_petri::ResourceExhausted),
}

impl fmt::Display for QssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QssError::NotFreeChoice { violations } => write!(
                f,
                "net is not free choice: {} place(s) violate the free-choice condition",
                violations.len()
            ),
            QssError::Empty => write!(f, "net has no transitions"),
            QssError::TooManyAllocations { required, limit } => write!(
                f,
                "net has {required} T-allocations, more than the configured limit of {limit}"
            ),
            QssError::Petri(e) => write!(f, "petri net error: {e}"),
            QssError::Sdf(e) => write!(f, "static scheduling error: {e}"),
            QssError::Cancelled => write!(f, "scheduling cancelled"),
            QssError::ResourceExhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for QssError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QssError::Petri(e) => Some(e),
            QssError::Sdf(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PetriError> for QssError {
    fn from(e: PetriError) -> Self {
        QssError::Petri(e)
    }
}

impl From<SdfError> for QssError {
    fn from(e: SdfError) -> Self {
        QssError::Sdf(e)
    }
}

impl From<fcpn_petri::Cancelled> for QssError {
    fn from(_: fcpn_petri::Cancelled) -> Self {
        QssError::Cancelled
    }
}

impl From<fcpn_petri::ResourceExhausted> for QssError {
    fn from(e: fcpn_petri::ResourceExhausted) -> Self {
        QssError::ResourceExhausted(e)
    }
}

impl From<fcpn_petri::Interrupt> for QssError {
    fn from(i: fcpn_petri::Interrupt) -> Self {
        match i {
            fcpn_petri::Interrupt::Cancelled => QssError::Cancelled,
            fcpn_petri::Interrupt::Exhausted(e) => QssError::ResourceExhausted(e),
        }
    }
}

/// Result alias for the crate.
pub type Result<T, E = QssError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QssError::NotFreeChoice {
            violations: vec![PlaceId::new(0), PlaceId::new(2)],
        };
        assert!(e.to_string().contains("2 place(s)"));
        let e = QssError::TooManyAllocations {
            required: 1 << 40,
            limit: 1 << 20,
        };
        assert!(e.to_string().contains("T-allocations"));
    }

    #[test]
    fn conversions_from_lower_layers() {
        let e: QssError = PetriError::ZeroWeightArc.into();
        assert!(matches!(e, QssError::Petri(_)));
        let e: QssError = SdfError::InconsistentRates.into();
        assert!(matches!(e, QssError::Sdf(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
