//! Per-component schedulability (Definition 3.5) and cycle generation.
//!
//! A T-reduction is schedulable when (1) it is consistent, (2) every source transition of
//! the original net is covered by one of its T-invariants, and (3) simulating a covering
//! T-invariant from the initial marking completes a cycle without deadlocking. The
//! simulation here fires the allocated choice transitions as early as possible, which
//! reproduces the firing orders printed in the paper (e.g. `t1 t2 t1 t2 t4` for Figure 4
//! and `t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6` for Figure 5).
//!
//! Two cache layers serve the scheduler's exponential sweep:
//!
//! * [`ComponentCache`] keys the memoised invariant analysis and simulated cycle by a
//!   **128-bit structural fingerprint** folded in one allocation-free pass over the
//!   component (collision-checked against the full signature, which is materialised
//!   once per distinct shape on first insert and stream-compared — never rebuilt — on
//!   every hit);
//! * [`ComponentChecker`] drives a whole check from a [`ReductionWorkspace`] without
//!   ever materialising the reduced [`PetriNet`] unless an analysis actually misses the
//!   cache — on a hit, the per-allocation cost is the reduction fixpoint, the
//!   fingerprint fold and the verdict assembly.
//!
//! The seed's `Vec<u64>`-keyed cache and dense Farkas are retained behind
//! [`NaiveComponentCache`] / [`check_component_naive_with`], the oracle the equivalence
//! suite and the `qss_pipeline` benchmark measure the fast path against.

use crate::{FiniteCompleteCycle, ReductionWorkspace, TAllocation, TReduction};
use fcpn_petri::analysis::{IncidenceMatrix, InvariantAnalysis};
use fcpn_petri::Fingerprint128;
use fcpn_petri::{PetriNet, PlaceId, TransitionId};
use std::collections::HashMap;
use std::rc::Rc;

/// Why a component (T-reduction) failed the schedulability test of Definition 3.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentFailure {
    /// The component is not consistent: the listed parent transitions belong to no
    /// T-invariant, so firing them cannot be balanced and tokens accumulate or starve.
    Inconsistent {
        /// Parent transitions not covered by any T-semiflow of the component.
        uncovered: Vec<TransitionId>,
    },
    /// A source transition of the original net has no T-invariant containing it in this
    /// component, so its input stream cannot be consumed at a sustainable rate.
    SourceNotCovered {
        /// The offending parent source transition.
        source: TransitionId,
    },
    /// Simulating the covering T-invariant deadlocked: the counts are algebraically
    /// balanced but not realisable from the initial marking.
    Deadlock {
        /// Parent transitions still owing firings when the simulation stalled.
        remaining: Vec<(TransitionId, u64)>,
        /// The partial firing sequence (parent identifiers).
        fired: Vec<TransitionId>,
    },
}

/// The verdict for one T-reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentVerdict {
    /// The component is statically schedulable; the cycle realises its covering
    /// T-invariant.
    Schedulable(FiniteCompleteCycle),
    /// The component fails Definition 3.5 for the recorded reason.
    NotSchedulable(ComponentFailure),
}

impl ComponentVerdict {
    /// Returns `true` if the component is schedulable.
    pub fn is_schedulable(&self) -> bool {
        matches!(self, ComponentVerdict::Schedulable(_))
    }
}

/// The result of one token-game simulation, cached per `(net structure, priority)`.
type CycleResult = Result<(Vec<TransitionId>, Vec<u64>), (Vec<u64>, Vec<TransitionId>)>;

// ---------------------------------------------------------------------------
// Structural signatures: the streaming walk, the 128-bit fingerprint fold, and
// the materialised form used for collision checks and the naive cache.
// ---------------------------------------------------------------------------

/// Walks the structural signature of a whole net: place/transition counts, the initial
/// marking, and the full weighted arc lists in index order. The `emit` callback returns
/// `false` to stop early (used by the streaming compare); the walk reports whether it
/// ran to completion.
fn walk_signature_net(net: &PetriNet, emit: &mut impl FnMut(u64) -> bool) -> bool {
    if !emit(net.place_count() as u64) || !emit(net.transition_count() as u64) {
        return false;
    }
    for &tokens in net.initial_marking().as_slice() {
        if !emit(tokens) {
            return false;
        }
    }
    for t in net.transitions() {
        if !emit(net.inputs(t).len() as u64) {
            return false;
        }
        for &(p, w) in net.inputs(t) {
            if !emit(p.index() as u64) || !emit(w) {
                return false;
            }
        }
        if !emit(net.outputs(t).len() as u64) {
            return false;
        }
        for &(p, w) in net.outputs(t) {
            if !emit(p.index() as u64) || !emit(w) {
                return false;
            }
        }
    }
    true
}

/// Walks the structural signature of the component held in `ws` — the exact `u64`
/// sequence [`walk_signature_net`] would produce on the materialised reduced net, but
/// streamed straight from the parent's arc lists and the workspace's kept flags, so no
/// subnet is ever built for a cache hit.
fn walk_signature_reduced(
    parent: &PetriNet,
    ws: &ReductionWorkspace,
    emit: &mut impl FnMut(u64) -> bool,
) -> bool {
    let kept_places = ws.kept_places();
    let kept_transitions = ws.kept_transitions();
    if !emit(kept_places.len() as u64) || !emit(kept_transitions.len() as u64) {
        return false;
    }
    for &p in kept_places {
        if !emit(parent.initial_marking().tokens(p)) {
            return false;
        }
    }
    for &t in kept_transitions {
        let kept_inputs = parent
            .inputs(t)
            .iter()
            .filter(|&&(p, _)| ws.child_place(p).is_some())
            .count();
        if !emit(kept_inputs as u64) {
            return false;
        }
        for &(p, w) in parent.inputs(t) {
            if let Some(child) = ws.child_place(p) {
                if !emit(child.index() as u64) || !emit(w) {
                    return false;
                }
            }
        }
        let kept_outputs = parent
            .outputs(t)
            .iter()
            .filter(|&&(p, _)| ws.child_place(p).is_some())
            .count();
        if !emit(kept_outputs as u64) {
            return false;
        }
        for &(p, w) in parent.outputs(t) {
            if let Some(child) = ws.child_place(p) {
                if !emit(child.index() as u64) || !emit(w) {
                    return false;
                }
            }
        }
    }
    true
}

/// A structural fingerprint/signature source: either a materialised reduced net or a
/// reduction workspace over the parent.
#[derive(Debug, Clone, Copy)]
enum SignatureSource<'a> {
    Net(&'a PetriNet),
    Reduced(&'a PetriNet, &'a ReductionWorkspace),
}

impl SignatureSource<'_> {
    fn walk(&self, emit: &mut impl FnMut(u64) -> bool) -> bool {
        match self {
            SignatureSource::Net(net) => walk_signature_net(net, emit),
            SignatureSource::Reduced(parent, ws) => walk_signature_reduced(parent, ws, emit),
        }
    }

    /// The 128-bit fingerprint of the signature stream (no allocation).
    fn fingerprint(&self) -> u128 {
        let mut fp = Fingerprint128::new();
        self.walk(&mut |x| {
            fp.fold(x);
            true
        });
        fp.finish()
    }

    /// Streaming equality against a materialised signature (no allocation; early exit
    /// on the first mismatch).
    fn matches(&self, signature: &[u64]) -> bool {
        let mut pos = 0usize;
        let complete = self.walk(&mut |x| {
            if signature.get(pos) == Some(&x) {
                pos += 1;
                true
            } else {
                false
            }
        });
        complete && pos == signature.len()
    }

    /// Materialises the full signature (once per distinct shape, on first insert).
    fn materialise(&self) -> Vec<u64> {
        let mut sig = Vec::new();
        self.walk(&mut |x| {
            sig.push(x);
            true
        });
        sig
    }
}

/// A structural fingerprint of a net: place/transition counts, the initial marking and
/// the full weighted arc lists in index order, materialised as a `Vec<u64>`. Two nets
/// with equal signatures have identical incidence structure and token game, hence
/// identical invariant bases and simulation outcomes. (The production cache keys by the
/// streamed 128-bit fingerprint and only materialises this once per distinct shape; the
/// naive cache uses it as the key directly.)
fn net_signature(net: &PetriNet) -> Vec<u64> {
    SignatureSource::Net(net).materialise()
}

// ---------------------------------------------------------------------------
// The fingerprint-keyed component cache.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct InvariantEntry {
    /// Full signature, kept for the streaming collision check on every hit.
    signature: Vec<u64>,
    analysis: Rc<InvariantAnalysis>,
}

#[derive(Debug)]
struct CycleEntry {
    /// Structural fingerprint of the component the cycle was simulated on.
    structure: u128,
    /// Priority list (allocated choice transitions in child indices).
    priority: Vec<u32>,
    result: Rc<CycleResult>,
}

/// Memoises the expensive, structure-only parts of [`check_component`] across the
/// T-reductions of one scheduling run.
///
/// Different allocations routinely produce *structurally identical* reduced nets — e.g.
/// every allocation of a symmetric choice chain reduces to the same conflict-free
/// skeleton, just relabelled — and both the Farkas invariant analysis and the cycle
/// simulation are pure functions of that structure (plus, for the simulation, the
/// priority list in child indices). Lookups key on a 128-bit fingerprint folded while
/// the signature is streamed (no allocation per lookup); the full signature is
/// materialised once per distinct shape when it is first inserted and stream-compared
/// on every subsequent hit, so a fingerprint collision degrades to an uncached
/// computation instead of a wrong verdict. Everything identifier-dependent (the mapping
/// back to parent transitions, source slices, diagnostics) is recomputed per reduction.
#[derive(Debug, Default)]
pub struct ComponentCache {
    invariants: HashMap<u128, InvariantEntry>,
    cycles: HashMap<u128, CycleEntry>,
}

impl ComponentCache {
    /// Drops every memoised analysis (used to emulate the uncached path without
    /// reconstructing the checker).
    pub fn clear(&mut self) {
        self.invariants.clear();
        self.cycles.clear();
    }

    /// Looks the invariant analysis up by fingerprint, verifying against the stored
    /// full signature. A [`InvariantLookup::Collision`] means the fingerprint is bound
    /// to a *different* shape in this cache — the caller must bypass both caches for
    /// this component (the cycle cache keys on the same fingerprint).
    fn invariants_get(&self, fp: u128, source: SignatureSource<'_>) -> InvariantLookup {
        match self.invariants.get(&fp) {
            None => InvariantLookup::Miss,
            Some(entry) if source.matches(&entry.signature) => {
                InvariantLookup::Hit(Rc::clone(&entry.analysis))
            }
            Some(_) => InvariantLookup::Collision,
        }
    }

    fn invariants_insert(
        &mut self,
        fp: u128,
        source: SignatureSource<'_>,
        analysis: Rc<InvariantAnalysis>,
    ) {
        // First insert wins; a colliding shape stays uncached (correctness is preserved
        // by the signature check on lookup).
        self.invariants.entry(fp).or_insert_with(|| InvariantEntry {
            signature: source.materialise(),
            analysis,
        });
    }

    fn cycles_get(&self, key: u128, structure: u128, priority: &[u32]) -> Option<Rc<CycleResult>> {
        let entry = self.cycles.get(&key)?;
        (entry.structure == structure && entry.priority == priority)
            .then(|| Rc::clone(&entry.result))
    }

    fn cycles_insert(
        &mut self,
        key: u128,
        structure: u128,
        priority: &[u32],
        result: Rc<CycleResult>,
    ) {
        self.cycles.entry(key).or_insert_with(|| CycleEntry {
            structure,
            priority: priority.to_vec(),
            result,
        });
    }
}

/// Outcome of a fingerprint lookup in the invariants cache.
enum InvariantLookup {
    Hit(Rc<InvariantAnalysis>),
    Miss,
    /// The fingerprint is taken by a different shape: every cache keyed on it is
    /// untrustworthy for this component.
    Collision,
}

/// Key for the cycle cache: the structural fingerprint folded together with the
/// priority list.
fn cycle_key(structure: u128, priority: &[u32]) -> u128 {
    let mut fp = Fingerprint128::new();
    fp.fold(structure as u64);
    fp.fold((structure >> 64) as u64);
    fp.fold(priority.len() as u64);
    for &p in priority {
        fp.fold(p as u64);
    }
    fp.finish()
}

// ---------------------------------------------------------------------------
// Component views: the verdict assembly works over either a materialised
// TReduction or a ReductionWorkspace (which never builds the subnet on a hit).
// ---------------------------------------------------------------------------

/// The child↔parent mapping of a component, independent of how it is stored.
#[derive(Debug, Clone, Copy)]
enum ComponentView<'a> {
    Reduction(&'a TReduction),
    Workspace(&'a ReductionWorkspace),
}

impl ComponentView<'_> {
    fn child_transition_count(&self) -> usize {
        match self {
            ComponentView::Reduction(r) => r.net.transition_count(),
            ComponentView::Workspace(ws) => ws.kept_transitions().len(),
        }
    }

    fn parent_transition(&self, child: TransitionId) -> TransitionId {
        match self {
            ComponentView::Reduction(r) => r.map.parent_transition(child),
            ComponentView::Workspace(ws) => ws.kept_transitions()[child.index()],
        }
    }

    fn parent_place(&self, child: PlaceId) -> PlaceId {
        match self {
            ComponentView::Reduction(r) => r.map.parent_place(child),
            ComponentView::Workspace(ws) => ws.kept_places()[child.index()],
        }
    }

    fn child_transition(&self, parent: TransitionId) -> Option<TransitionId> {
        match self {
            ComponentView::Reduction(r) => r.map.child_transition(parent),
            ComponentView::Workspace(ws) => ws.child_transition(parent),
        }
    }
}

/// The component net, materialised lazily: a [`TReduction`] already owns it; a
/// workspace view only builds it when an analysis actually misses the cache.
struct LazyComponentNet<'a> {
    existing: Option<&'a PetriNet>,
    built: Option<PetriNet>,
}

impl<'a> LazyComponentNet<'a> {
    fn get(&mut self, parent: &PetriNet, view: ComponentView<'_>) -> &PetriNet {
        if let Some(net) = self.existing {
            return net;
        }
        if self.built.is_none() {
            let ComponentView::Workspace(ws) = view else {
                unreachable!("reduction views always carry their net");
            };
            let (net, _map) = parent
                .induced_subnet(ws.kept_places(), ws.kept_transitions())
                .expect("workspace identifiers belong to the parent net");
            self.built = Some(net);
        }
        self.built.as_ref().expect("just built")
    }
}

/// Checks Definition 3.5 for one T-reduction of `parent` and, if it holds, produces the
/// component's finite complete cycle expressed in parent identifiers.
///
/// One-shot convenience over [`check_component_with`]; loops over many reductions (the
/// quasi-static scheduler) should share a [`ComponentCache`] instead.
pub fn check_component(parent: &PetriNet, reduction: &TReduction) -> ComponentVerdict {
    check_component_with(parent, reduction, &mut ComponentCache::default())
}

/// [`check_component`] with a shared [`ComponentCache`]: structurally identical reduced
/// nets reuse the invariant basis and the simulated cycle. The verdict is identical to
/// the uncached path.
pub fn check_component_with(
    parent: &PetriNet,
    reduction: &TReduction,
    cache: &mut ComponentCache,
) -> ComponentVerdict {
    let sources = parent.source_transitions();
    let mut priority: Vec<TransitionId> = Vec::new();
    let mut priority_key: Vec<u32> = Vec::new();
    check_impl(
        parent,
        &sources,
        &reduction.allocation,
        ComponentView::Reduction(reduction),
        SignatureSource::Net(&reduction.net),
        LazyComponentNet {
            existing: Some(&reduction.net),
            built: None,
        },
        &mut priority,
        &mut priority_key,
        cache,
    )
}

/// Drives per-allocation schedulability checks straight from a
/// [`ReductionWorkspace`] — the scheduler's hot path. Construction hoists the
/// per-sweep constants (the parent's source transitions, the priority scratch
/// buffers); [`check`](ComponentChecker::check) then runs the reduction fixpoint, folds
/// the 128-bit structural fingerprint and consults the cache, materialising the reduced
/// net **only when an analysis misses** — on a hit the whole check performs no
/// allocation beyond the verdict it returns.
#[derive(Debug)]
pub struct ComponentChecker<'a> {
    parent: &'a PetriNet,
    sources: Vec<TransitionId>,
    priority: Vec<TransitionId>,
    priority_key: Vec<u32>,
}

impl<'a> ComponentChecker<'a> {
    /// Prepares a checker for sweeping `parent`'s allocations.
    pub fn new(parent: &'a PetriNet) -> Self {
        ComponentChecker {
            parent,
            sources: parent.source_transitions(),
            priority: Vec::new(),
            priority_key: Vec::new(),
        }
    }

    /// Checks the component selected by `allocation`: runs the Reduction Algorithm on
    /// `workspace`, then the cached Definition 3.5 checks. The verdict is identical to
    /// [`check_component`] on [`TReduction::compute`]'s output for the same allocation.
    pub fn check(
        &mut self,
        allocation: &TAllocation,
        workspace: &mut ReductionWorkspace,
        cache: &mut ComponentCache,
    ) -> ComponentVerdict {
        workspace.reduce(self.parent, allocation, false);
        check_impl(
            self.parent,
            &self.sources,
            allocation,
            ComponentView::Workspace(workspace),
            SignatureSource::Reduced(self.parent, workspace),
            LazyComponentNet {
                existing: None,
                built: None,
            },
            &mut self.priority,
            &mut self.priority_key,
            cache,
        )
    }

    /// The parent net this checker sweeps (the workspace passed to
    /// [`check`](ComponentChecker::check) holds the surviving nodes of the last
    /// reduction for failure diagnostics).
    pub fn parent(&self) -> &'a PetriNet {
        self.parent
    }
}

/// The shared Definition 3.5 check over either component representation.
#[allow(clippy::too_many_arguments)]
fn check_impl(
    parent: &PetriNet,
    sources: &[TransitionId],
    allocation: &TAllocation,
    view: ComponentView<'_>,
    signature: SignatureSource<'_>,
    mut lazy_net: LazyComponentNet<'_>,
    priority: &mut Vec<TransitionId>,
    priority_key: &mut Vec<u32>,
    cache: &mut ComponentCache,
) -> ComponentVerdict {
    let transition_count = view.child_transition_count();
    let structure = signature.fingerprint();
    // A fingerprint collision (this fingerprint already names a *different* shape)
    // poisons every cache keyed on it for this component — the check falls back to a
    // fully uncached computation rather than ever trusting a colliding entry.
    let mut collided = false;
    let invariants: Rc<InvariantAnalysis> = match cache.invariants_get(structure, signature) {
        InvariantLookup::Hit(cached) => cached,
        lookup => {
            collided = matches!(lookup, InvariantLookup::Collision);
            // Only the T-semiflow side is ever consulted by Definition 3.5, so the
            // transpose (P-semiflow) elimination is skipped on this path entirely.
            let net = lazy_net.get(parent, view);
            let (t_semiflows, complete) = InvariantAnalysis::t_semiflows_of(net);
            let computed = Rc::new(InvariantAnalysis {
                t_semiflows,
                p_semiflows: Vec::new(),
                complete,
            });
            if !collided {
                cache.invariants_insert(structure, signature, Rc::clone(&computed));
            }
            computed
        }
    };

    // (1) Consistency: every transition of the component lies in some T-semiflow.
    let covered = {
        let mut covered = vec![false; transition_count];
        for flow in &invariants.t_semiflows {
            for index in flow.support_iter() {
                covered[index] = true;
            }
        }
        covered
    };
    let uncovered: Vec<TransitionId> = covered
        .iter()
        .enumerate()
        .filter(|&(_, &c)| !c)
        .map(|(child, _)| view.parent_transition(TransitionId::new(child)))
        .collect();
    if !uncovered.is_empty() || transition_count == 0 {
        return ComponentVerdict::NotSchedulable(ComponentFailure::Inconsistent { uncovered });
    }

    // (2) Every source transition of the original net must be covered by a T-invariant of
    // the component. Source transitions always survive reduction (their pre-set is empty,
    // so they are never in conflict), hence the lookup cannot fail structurally.
    for &parent_source in sources {
        let Some(child) = view.child_transition(parent_source) else {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        };
        if invariants.t_semiflows_containing(child).is_empty() {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        }
    }

    // (3) Simulate the covering T-invariant (the sum of the minimal semiflows, which by
    // consistency covers every transition of the component, hence every source).
    let counts = invariants
        .positive_t_invariant(transition_count)
        .expect("consistency was established above");
    priority.clear();
    priority.extend(
        allocation
            .choices()
            .iter()
            .filter_map(|&(_, chosen)| view.child_transition(chosen)),
    );
    priority_key.clear();
    priority_key.extend(priority.iter().map(|t| t.index() as u32));
    let key = cycle_key(structure, priority_key);
    let cached_cycle = if collided {
        None // the fingerprint names another shape; the cycle cache keys on it too
    } else {
        cache.cycles_get(key, structure, priority_key)
    };
    let simulated: Rc<CycleResult> = match cached_cycle {
        Some(cached) => cached,
        None => {
            let net = lazy_net.get(parent, view);
            debug_assert!(IncidenceMatrix::from_net(net).is_t_invariant(&counts));
            let computed = Rc::new(simulate_cycle(net, &counts, priority));
            if !collided {
                cache.cycles_insert(key, structure, priority_key, Rc::clone(&computed));
            }
            computed
        }
    };
    match &*simulated {
        Ok((sequence, peaks)) => {
            let parent_sequence: Vec<TransitionId> = sequence
                .iter()
                .map(|&t| view.parent_transition(t))
                .collect();
            let mut parent_counts = vec![0u64; parent.transition_count()];
            for &t in &parent_sequence {
                parent_counts[t.index()] += 1;
            }
            let mut parent_bounds = vec![0u64; parent.place_count()];
            for (child_index, &peak) in peaks.iter().enumerate() {
                let parent_place = view.parent_place(PlaceId::new(child_index));
                parent_bounds[parent_place.index()] = peak;
            }
            // Slice the cycle per input: for each source transition, the sum of the
            // minimal T-semiflows containing it. Transitions in the same slice have
            // dependent firing rates and will end up in the same software task.
            let mut source_slices = Vec::new();
            for &parent_source in sources {
                let Some(child) = view.child_transition(parent_source) else {
                    continue;
                };
                let mut slice = vec![0u64; parent.transition_count()];
                for flow in invariants.t_semiflows_containing(child) {
                    for (child_index, &count) in flow.vector.iter().enumerate() {
                        let parent_t = view.parent_transition(TransitionId::new(child_index));
                        slice[parent_t.index()] += count;
                    }
                }
                source_slices.push((parent_source, slice));
            }
            ComponentVerdict::Schedulable(FiniteCompleteCycle {
                allocation: allocation.clone(),
                sequence: parent_sequence,
                counts: parent_counts,
                buffer_bounds: parent_bounds,
                source_slices,
            })
        }
        Err((remaining, fired)) => {
            let remaining = remaining
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, count)| count > 0)
                .map(|(index, count)| (view.parent_transition(TransitionId::new(index)), count))
                .collect();
            let fired = fired.iter().map(|&t| view.parent_transition(t)).collect();
            ComponentVerdict::NotSchedulable(ComponentFailure::Deadlock { remaining, fired })
        }
    }
}

// ---------------------------------------------------------------------------
// The retained seed cache: Vec<u64> signature keys + dense Farkas.
// ---------------------------------------------------------------------------

/// The seed's component cache, retained as the reference for the fingerprint-keyed
/// [`ComponentCache`]: keys are the materialised `Vec<u64>` structural signatures
/// (allocated per lookup) and the invariant analysis runs the dense
/// [`InvariantAnalysis::of_matrix_naive`] elimination.
#[derive(Debug, Default)]
pub struct NaiveComponentCache {
    invariants: HashMap<Vec<u64>, Rc<InvariantAnalysis>>,
    cycles: HashMap<(Vec<u64>, Vec<u32>), Rc<CycleResult>>,
}

/// [`check_component`] on the retained seed path: per-call `Vec<u64>` signature keys and
/// the dense Farkas elimination. The verdict is identical to [`check_component_with`]'s;
/// the pair exists so the equivalence suite and the `qss_pipeline` benchmark can hold
/// the production pipeline against the seed one end to end.
pub fn check_component_naive_with(
    parent: &PetriNet,
    reduction: &TReduction,
    cache: &mut NaiveComponentCache,
) -> ComponentVerdict {
    let net = &reduction.net;
    let signature = net_signature(net);
    let invariants: Rc<InvariantAnalysis> = match cache.invariants.get(&signature) {
        Some(cached) => Rc::clone(cached),
        None => {
            let computed = Rc::new(InvariantAnalysis::of_naive(net));
            cache
                .invariants
                .insert(signature.clone(), Rc::clone(&computed));
            computed
        }
    };

    // (1) Consistency: every transition of the component lies in some T-semiflow.
    let covered = {
        let mut covered = vec![false; net.transition_count()];
        for flow in &invariants.t_semiflows {
            for index in flow.support() {
                covered[index] = true;
            }
        }
        covered
    };
    let uncovered: Vec<TransitionId> = net
        .transitions()
        .filter(|t| !covered[t.index()])
        .map(|t| reduction.map.parent_transition(t))
        .collect();
    if !uncovered.is_empty() || net.transition_count() == 0 {
        return ComponentVerdict::NotSchedulable(ComponentFailure::Inconsistent { uncovered });
    }

    // (2) Every source transition of the original net must be covered by a T-invariant of
    // the component.
    for parent_source in parent.source_transitions() {
        let Some(child) = reduction.map.child_transition(parent_source) else {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        };
        if invariants.t_semiflows_containing(child).is_empty() {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        }
    }

    // (3) Simulate the covering T-invariant.
    let counts = invariants
        .positive_t_invariant(net.transition_count())
        .expect("consistency was established above");
    debug_assert!(IncidenceMatrix::from_net(net).is_t_invariant(&counts));
    let priority: Vec<TransitionId> = reduction
        .allocation
        .choices()
        .iter()
        .filter_map(|&(_, chosen)| reduction.map.child_transition(chosen))
        .collect();
    let priority_key: Vec<u32> = priority.iter().map(|t| t.index() as u32).collect();
    let simulated: Rc<CycleResult> =
        match cache.cycles.get(&(signature.clone(), priority_key.clone())) {
            Some(cached) => Rc::clone(cached),
            None => {
                let computed = Rc::new(simulate_cycle(net, &counts, &priority));
                cache
                    .cycles
                    .insert((signature, priority_key), Rc::clone(&computed));
                computed
            }
        };
    match &*simulated {
        Ok((sequence, peaks)) => {
            let parent_sequence = reduction.sequence_to_parent(sequence);
            let mut parent_counts = vec![0u64; parent.transition_count()];
            for &t in &parent_sequence {
                parent_counts[t.index()] += 1;
            }
            let mut parent_bounds = vec![0u64; parent.place_count()];
            for (child_index, &peak) in peaks.iter().enumerate() {
                let parent_place = reduction
                    .map
                    .parent_place(fcpn_petri::PlaceId::new(child_index));
                parent_bounds[parent_place.index()] = peak;
            }
            let mut source_slices = Vec::new();
            for parent_source in parent.source_transitions() {
                let Some(child) = reduction.map.child_transition(parent_source) else {
                    continue;
                };
                let mut slice = vec![0u64; parent.transition_count()];
                for flow in invariants.t_semiflows_containing(child) {
                    for (child_index, &count) in flow.vector.iter().enumerate() {
                        let parent_t = reduction
                            .map
                            .parent_transition(TransitionId::new(child_index));
                        slice[parent_t.index()] += count;
                    }
                }
                source_slices.push((parent_source, slice));
            }
            ComponentVerdict::Schedulable(FiniteCompleteCycle {
                allocation: reduction.allocation.clone(),
                sequence: parent_sequence,
                counts: parent_counts,
                buffer_bounds: parent_bounds,
                source_slices,
            })
        }
        Err((remaining, fired)) => {
            let remaining = remaining
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, count)| count > 0)
                .map(|(index, count)| {
                    (
                        reduction.map.parent_transition(TransitionId::new(index)),
                        count,
                    )
                })
                .collect();
            let fired = reduction.sequence_to_parent(fired);
            ComponentVerdict::NotSchedulable(ComponentFailure::Deadlock { remaining, fired })
        }
    }
}

/// Simulates the token game of a conflict-free component until every transition has fired
/// `counts[t]` times. At each step the lowest-indexed enabled transition that still owes
/// firings is fired, except that transitions in `priority` (the allocated choice
/// transitions) are fired first whenever they are enabled — this "decide the choice as
/// soon as its token arrives" order is the one the paper's examples use.
///
/// The simulation runs on the state-space engine's firing fast path: flat token buffers,
/// [`PetriNet::fire_into`] with precomputed delta rows, and peak tracking restricted to
/// the places each firing actually touches — no `Marking` clone or validation per step.
///
/// Returns the firing sequence and per-place peak token counts, or
/// `Err((remaining, fired))` on deadlock.
#[allow(clippy::type_complexity)]
pub fn simulate_cycle(
    net: &PetriNet,
    counts: &[u64],
    priority: &[TransitionId],
) -> Result<(Vec<TransitionId>, Vec<u64>), (Vec<u64>, Vec<TransitionId>)> {
    let mut remaining: Vec<u64> = counts.to_vec();
    let mut marking: Vec<u64> = net.initial_marking().as_slice().to_vec();
    let mut scratch: Vec<u64> = vec![0; marking.len()];
    let mut sequence = Vec::new();
    let mut peaks: Vec<u64> = marking.clone();
    let total: u64 = remaining.iter().sum();
    let mut fired = 0u64;
    while fired < total {
        let fireable = |t: TransitionId, remaining: &[u64], marking: &[u64]| {
            remaining[t.index()] > 0 && net.is_enabled_at(marking, t)
        };
        let next = priority
            .iter()
            .copied()
            .find(|&t| fireable(t, &remaining, &marking))
            .or_else(|| {
                net.transitions()
                    .find(|&t| fireable(t, &remaining, &marking))
            });
        let Some(t) = next else {
            return Err((remaining, sequence));
        };
        // The transition was selected as enabled, so fire_into can only fail on token
        // overflow; `scratch` is unspecified then, so aborting (like the safe path's
        // `.expect` used to) is the only sound option.
        assert!(
            net.fire_into(&marking, &mut scratch, t),
            "firing {t} overflowed a place's token count"
        );
        std::mem::swap(&mut marking, &mut scratch);
        remaining[t.index()] -= 1;
        sequence.push(t);
        fired += 1;
        // Only places this transition produced into can set a new peak.
        for &(p, delta) in net.delta_row(t) {
            if delta > 0 && marking[p.index()] > peaks[p.index()] {
                peaks[p.index()] = marking[p.index()];
            }
        }
    }
    Ok((sequence, peaks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_allocations, AllocationOptions, TReduction};
    use fcpn_petri::gallery;

    fn reductions_of(net: &PetriNet) -> Vec<TReduction> {
        enumerate_allocations(net, AllocationOptions::default())
            .unwrap()
            .into_iter()
            .map(|a| TReduction::compute(net, a).unwrap())
            .collect()
    }

    #[test]
    fn figure5_r1_invariants_and_cycle_match_paper() {
        let net = gallery::figure5();
        let t2 = net.transition_by_name("t2").unwrap();
        let reductions = reductions_of(&net);
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        // Check the component invariants the paper quotes: (1,1,0,2,0,4,0,0,0) and
        // (0,0,0,0,0,1,0,1,1) in parent transition order.
        let inv = InvariantAnalysis::of(&r1.net);
        let mut parent_vectors: Vec<Vec<u64>> = inv
            .t_semiflows
            .iter()
            .map(|s| {
                let mut v = vec![0u64; net.transition_count()];
                for (child, &count) in s.vector.iter().enumerate() {
                    let parent = r1.map.parent_transition(TransitionId::new(child));
                    v[parent.index()] = count;
                }
                v
            })
            .collect();
        parent_vectors.sort();
        assert_eq!(
            parent_vectors,
            vec![
                vec![0, 0, 0, 0, 0, 1, 0, 1, 1],
                vec![1, 1, 0, 2, 0, 4, 0, 0, 0],
            ]
        );
        // And the cycle matches the paper's (t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6).
        match check_component(&net, r1) {
            ComponentVerdict::Schedulable(cycle) => {
                assert_eq!(
                    net.format_sequence(&cycle.sequence),
                    "t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6"
                );
                assert!(net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence));
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }

    #[test]
    fn figure5_r2_cycle_matches_paper() {
        let net = gallery::figure5();
        let t3 = net.transition_by_name("t3").unwrap();
        let reductions = reductions_of(&net);
        let r2 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t3))
            .unwrap();
        match check_component(&net, r2) {
            ComponentVerdict::Schedulable(cycle) => {
                assert_eq!(
                    net.format_sequence(&cycle.sequence),
                    "t1 t3 t5 t7 t7 t8 t9 t6"
                );
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }

    #[test]
    fn figure7_components_are_inconsistent() {
        let net = gallery::figure7();
        for reduction in reductions_of(&net) {
            match check_component(&net, &reduction) {
                ComponentVerdict::NotSchedulable(ComponentFailure::Inconsistent { uncovered }) => {
                    assert!(!uncovered.is_empty());
                }
                other => panic!("expected inconsistency, got {other:?}"),
            }
        }
    }

    #[test]
    fn figure3b_components_are_inconsistent() {
        let net = gallery::figure3b();
        for reduction in reductions_of(&net) {
            assert!(!check_component(&net, &reduction).is_schedulable());
        }
    }

    #[test]
    fn deadlock_detected_when_invariant_not_realisable() {
        // A delay-free loop is consistent (x = (1,1) balances it) but cannot fire.
        let mut b = fcpn_petri::NetBuilder::new("deadlock");
        let p1 = b.place("p1", 0);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 1);
        match check_component(&net, &reductions[0]) {
            ComponentVerdict::NotSchedulable(ComponentFailure::Deadlock { remaining, fired }) => {
                assert!(fired.is_empty());
                assert_eq!(remaining.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn simulate_cycle_respects_priority() {
        let net = gallery::figure4();
        let t2 = net.transition_by_name("t2").unwrap();
        let reductions = reductions_of(&net);
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        match check_component(&net, r1) {
            ComponentVerdict::Schedulable(cycle) => {
                // The choice fires as soon as its token arrives: t1 t2 t1 t2 t4.
                assert_eq!(net.format_sequence(&cycle.sequence), "t1 t2 t1 t2 t4");
                assert_eq!(cycle.counts, vec![2, 2, 0, 1, 0]);
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }

    #[test]
    fn checker_matches_check_component_on_every_gallery_allocation() {
        // The workspace-driven checker (no materialised subnet on cache hits) must give
        // the same verdict as the reduction-driven path, cached and uncached, across
        // schedulable and failing nets.
        for net in [
            gallery::figure2(),
            gallery::figure3a(),
            gallery::figure3b(),
            gallery::figure4(),
            gallery::figure5(),
            gallery::figure7(),
            gallery::choice_chain(4),
        ] {
            let mut checker = ComponentChecker::new(&net);
            let mut ws = ReductionWorkspace::new();
            let mut cache = ComponentCache::default();
            let mut naive_cache = NaiveComponentCache::default();
            for allocation in enumerate_allocations(&net, AllocationOptions::default()).unwrap() {
                let reduction = TReduction::compute(&net, allocation.clone()).unwrap();
                let reference = check_component(&net, &reduction);
                let cached = check_component_with(&net, &reduction, &mut ComponentCache::default());
                let naive = check_component_naive_with(&net, &reduction, &mut naive_cache);
                let fast = checker.check(&allocation, &mut ws, &mut cache);
                assert_eq!(reference, cached, "net {}", net.name());
                assert_eq!(reference, naive, "net {}", net.name());
                assert_eq!(reference, fast, "net {}", net.name());
            }
        }
    }

    #[test]
    fn workspace_signature_stream_matches_materialised_net() {
        // The streamed reduced-component signature must be the exact u64 sequence the
        // materialised subnet produces — fingerprints and full signatures both.
        for net in [
            gallery::figure5(),
            gallery::figure7(),
            gallery::choice_chain(3),
        ] {
            let mut ws = ReductionWorkspace::new();
            for allocation in enumerate_allocations(&net, AllocationOptions::default()).unwrap() {
                let reduction = TReduction::compute(&net, allocation.clone()).unwrap();
                ws.reduce(&net, &allocation, false);
                let from_net = SignatureSource::Net(&reduction.net);
                let from_ws = SignatureSource::Reduced(&net, &ws);
                assert_eq!(from_ws.materialise(), from_net.materialise());
                assert_eq!(from_ws.fingerprint(), from_net.fingerprint());
                assert!(from_ws.matches(&from_net.materialise()));
            }
        }
    }

    #[test]
    fn cache_fingerprint_agrees_with_public_net_structural_fingerprint() {
        // `fcpn_petri::net_structural_fingerprint` advertises the exact fold this cache
        // keys on; the two must never drift apart.
        for net in [
            gallery::figure2(),
            gallery::figure5(),
            gallery::figure7(),
            gallery::choice_chain(4),
        ] {
            assert_eq!(
                SignatureSource::Net(&net).fingerprint(),
                fcpn_petri::net_structural_fingerprint(&net),
                "net {}",
                net.name()
            );
        }
    }
}
