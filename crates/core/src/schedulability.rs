//! Per-component schedulability (Definition 3.5) and cycle generation.
//!
//! A T-reduction is schedulable when (1) it is consistent, (2) every source transition of
//! the original net is covered by one of its T-invariants, and (3) simulating a covering
//! T-invariant from the initial marking completes a cycle without deadlocking. The
//! simulation here fires the allocated choice transitions as early as possible, which
//! reproduces the firing orders printed in the paper (e.g. `t1 t2 t1 t2 t4` for Figure 4
//! and `t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6` for Figure 5).

use crate::{FiniteCompleteCycle, TReduction};
use fcpn_petri::analysis::{IncidenceMatrix, InvariantAnalysis};
use fcpn_petri::{PetriNet, TransitionId};
use std::collections::HashMap;
use std::rc::Rc;

/// Why a component (T-reduction) failed the schedulability test of Definition 3.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentFailure {
    /// The component is not consistent: the listed parent transitions belong to no
    /// T-invariant, so firing them cannot be balanced and tokens accumulate or starve.
    Inconsistent {
        /// Parent transitions not covered by any T-semiflow of the component.
        uncovered: Vec<TransitionId>,
    },
    /// A source transition of the original net has no T-invariant containing it in this
    /// component, so its input stream cannot be consumed at a sustainable rate.
    SourceNotCovered {
        /// The offending parent source transition.
        source: TransitionId,
    },
    /// Simulating the covering T-invariant deadlocked: the counts are algebraically
    /// balanced but not realisable from the initial marking.
    Deadlock {
        /// Parent transitions still owing firings when the simulation stalled.
        remaining: Vec<(TransitionId, u64)>,
        /// The partial firing sequence (parent identifiers).
        fired: Vec<TransitionId>,
    },
}

/// The verdict for one T-reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentVerdict {
    /// The component is statically schedulable; the cycle realises its covering
    /// T-invariant.
    Schedulable(FiniteCompleteCycle),
    /// The component fails Definition 3.5 for the recorded reason.
    NotSchedulable(ComponentFailure),
}

impl ComponentVerdict {
    /// Returns `true` if the component is schedulable.
    pub fn is_schedulable(&self) -> bool {
        matches!(self, ComponentVerdict::Schedulable(_))
    }
}

/// The result of one token-game simulation, cached per `(net structure, priority)`.
type CycleResult = Result<(Vec<TransitionId>, Vec<u64>), (Vec<u64>, Vec<TransitionId>)>;

/// Memoises the expensive, structure-only parts of [`check_component`] across the
/// T-reductions of one scheduling run.
///
/// Different allocations routinely produce *structurally identical* reduced nets — e.g.
/// every allocation of a symmetric choice chain reduces to the same conflict-free
/// skeleton, just relabelled — and both the Farkas invariant analysis and the cycle
/// simulation are pure functions of that structure (plus, for the simulation, the
/// priority list in child indices). The cache keys both by a structural signature of the
/// reduced net (arc lists + initial marking, names excluded), so a run over `2^n`
/// allocations performs the invariant analysis once per *distinct* component shape
/// instead of once per allocation. Everything identifier-dependent (the mapping back to
/// parent transitions, source slices, diagnostics) is recomputed per reduction.
#[derive(Debug, Default)]
pub struct ComponentCache {
    invariants: HashMap<Vec<u64>, Rc<InvariantAnalysis>>,
    cycles: HashMap<(Vec<u64>, Vec<u32>), Rc<CycleResult>>,
}

/// A structural fingerprint of a net: place/transition counts, the initial marking and
/// the full weighted arc lists in index order. Two nets with equal signatures have
/// identical incidence structure and token game, hence identical invariant bases and
/// simulation outcomes.
fn net_signature(net: &PetriNet) -> Vec<u64> {
    let mut sig = Vec::with_capacity(2 + net.place_count() + 4 * net.arc_count());
    sig.push(net.place_count() as u64);
    sig.push(net.transition_count() as u64);
    sig.extend_from_slice(net.initial_marking().as_slice());
    for t in net.transitions() {
        sig.push(net.inputs(t).len() as u64);
        for &(p, w) in net.inputs(t) {
            sig.push(p.index() as u64);
            sig.push(w);
        }
        sig.push(net.outputs(t).len() as u64);
        for &(p, w) in net.outputs(t) {
            sig.push(p.index() as u64);
            sig.push(w);
        }
    }
    sig
}

/// Checks Definition 3.5 for one T-reduction of `parent` and, if it holds, produces the
/// component's finite complete cycle expressed in parent identifiers.
///
/// One-shot convenience over [`check_component_with`]; loops over many reductions (the
/// quasi-static scheduler) should share a [`ComponentCache`] instead.
pub fn check_component(parent: &PetriNet, reduction: &TReduction) -> ComponentVerdict {
    check_component_with(parent, reduction, &mut ComponentCache::default())
}

/// [`check_component`] with a shared [`ComponentCache`]: structurally identical reduced
/// nets reuse the invariant basis and the simulated cycle. The verdict is identical to
/// the uncached path.
pub fn check_component_with(
    parent: &PetriNet,
    reduction: &TReduction,
    cache: &mut ComponentCache,
) -> ComponentVerdict {
    let net = &reduction.net;
    let signature = net_signature(net);
    let invariants: Rc<InvariantAnalysis> = match cache.invariants.get(&signature) {
        Some(cached) => Rc::clone(cached),
        None => {
            let computed = Rc::new(InvariantAnalysis::of(net));
            cache
                .invariants
                .insert(signature.clone(), Rc::clone(&computed));
            computed
        }
    };

    // (1) Consistency: every transition of the component lies in some T-semiflow.
    let covered = {
        let mut covered = vec![false; net.transition_count()];
        for flow in &invariants.t_semiflows {
            for index in flow.support() {
                covered[index] = true;
            }
        }
        covered
    };
    let uncovered: Vec<TransitionId> = net
        .transitions()
        .filter(|t| !covered[t.index()])
        .map(|t| reduction.map.parent_transition(t))
        .collect();
    if !uncovered.is_empty() || net.transition_count() == 0 {
        return ComponentVerdict::NotSchedulable(ComponentFailure::Inconsistent { uncovered });
    }

    // (2) Every source transition of the original net must be covered by a T-invariant of
    // the component. Source transitions always survive reduction (their pre-set is empty,
    // so they are never in conflict), hence the lookup cannot fail structurally.
    for parent_source in parent.source_transitions() {
        let Some(child) = reduction.map.child_transition(parent_source) else {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        };
        if invariants.t_semiflows_containing(child).is_empty() {
            return ComponentVerdict::NotSchedulable(ComponentFailure::SourceNotCovered {
                source: parent_source,
            });
        }
    }

    // (3) Simulate the covering T-invariant (the sum of the minimal semiflows, which by
    // consistency covers every transition of the component, hence every source).
    let counts = invariants
        .positive_t_invariant(net.transition_count())
        .expect("consistency was established above");
    debug_assert!(IncidenceMatrix::from_net(net).is_t_invariant(&counts));
    let priority: Vec<TransitionId> = reduction
        .allocation
        .choices()
        .iter()
        .filter_map(|&(_, chosen)| reduction.map.child_transition(chosen))
        .collect();
    let priority_key: Vec<u32> = priority.iter().map(|t| t.index() as u32).collect();
    let simulated: Rc<CycleResult> =
        match cache.cycles.get(&(signature.clone(), priority_key.clone())) {
            Some(cached) => Rc::clone(cached),
            None => {
                let computed = Rc::new(simulate_cycle(net, &counts, &priority));
                cache
                    .cycles
                    .insert((signature, priority_key), Rc::clone(&computed));
                computed
            }
        };
    match &*simulated {
        Ok((sequence, peaks)) => {
            let parent_sequence = reduction.sequence_to_parent(sequence);
            let mut parent_counts = vec![0u64; parent.transition_count()];
            for &t in &parent_sequence {
                parent_counts[t.index()] += 1;
            }
            let mut parent_bounds = vec![0u64; parent.place_count()];
            for (child_index, &peak) in peaks.iter().enumerate() {
                let parent_place = reduction
                    .map
                    .parent_place(fcpn_petri::PlaceId::new(child_index));
                parent_bounds[parent_place.index()] = peak;
            }
            // Slice the cycle per input: for each source transition, the sum of the
            // minimal T-semiflows containing it. Transitions in the same slice have
            // dependent firing rates and will end up in the same software task.
            let mut source_slices = Vec::new();
            for parent_source in parent.source_transitions() {
                let Some(child) = reduction.map.child_transition(parent_source) else {
                    continue;
                };
                let mut slice = vec![0u64; parent.transition_count()];
                for flow in invariants.t_semiflows_containing(child) {
                    for (child_index, &count) in flow.vector.iter().enumerate() {
                        let parent_t = reduction
                            .map
                            .parent_transition(TransitionId::new(child_index));
                        slice[parent_t.index()] += count;
                    }
                }
                source_slices.push((parent_source, slice));
            }
            ComponentVerdict::Schedulable(FiniteCompleteCycle {
                allocation: reduction.allocation.clone(),
                sequence: parent_sequence,
                counts: parent_counts,
                buffer_bounds: parent_bounds,
                source_slices,
            })
        }
        Err((remaining, fired)) => {
            let remaining = remaining
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, count)| count > 0)
                .map(|(index, count)| {
                    (
                        reduction.map.parent_transition(TransitionId::new(index)),
                        count,
                    )
                })
                .collect();
            let fired = reduction.sequence_to_parent(fired);
            ComponentVerdict::NotSchedulable(ComponentFailure::Deadlock { remaining, fired })
        }
    }
}

/// Simulates the token game of a conflict-free component until every transition has fired
/// `counts[t]` times. At each step the lowest-indexed enabled transition that still owes
/// firings is fired, except that transitions in `priority` (the allocated choice
/// transitions) are fired first whenever they are enabled — this "decide the choice as
/// soon as its token arrives" order is the one the paper's examples use.
///
/// The simulation runs on the state-space engine's firing fast path: flat token buffers,
/// [`PetriNet::fire_into`] with precomputed delta rows, and peak tracking restricted to
/// the places each firing actually touches — no `Marking` clone or validation per step.
///
/// Returns the firing sequence and per-place peak token counts, or
/// `Err((remaining, fired))` on deadlock.
#[allow(clippy::type_complexity)]
pub fn simulate_cycle(
    net: &PetriNet,
    counts: &[u64],
    priority: &[TransitionId],
) -> Result<(Vec<TransitionId>, Vec<u64>), (Vec<u64>, Vec<TransitionId>)> {
    let mut remaining: Vec<u64> = counts.to_vec();
    let mut marking: Vec<u64> = net.initial_marking().as_slice().to_vec();
    let mut scratch: Vec<u64> = vec![0; marking.len()];
    let mut sequence = Vec::new();
    let mut peaks: Vec<u64> = marking.clone();
    let total: u64 = remaining.iter().sum();
    let mut fired = 0u64;
    while fired < total {
        let fireable = |t: TransitionId, remaining: &[u64], marking: &[u64]| {
            remaining[t.index()] > 0 && net.is_enabled_at(marking, t)
        };
        let next = priority
            .iter()
            .copied()
            .find(|&t| fireable(t, &remaining, &marking))
            .or_else(|| {
                net.transitions()
                    .find(|&t| fireable(t, &remaining, &marking))
            });
        let Some(t) = next else {
            return Err((remaining, sequence));
        };
        // The transition was selected as enabled, so fire_into can only fail on token
        // overflow; `scratch` is unspecified then, so aborting (like the safe path's
        // `.expect` used to) is the only sound option.
        assert!(
            net.fire_into(&marking, &mut scratch, t),
            "firing {t} overflowed a place's token count"
        );
        std::mem::swap(&mut marking, &mut scratch);
        remaining[t.index()] -= 1;
        sequence.push(t);
        fired += 1;
        // Only places this transition produced into can set a new peak.
        for &(p, delta) in net.delta_row(t) {
            if delta > 0 && marking[p.index()] > peaks[p.index()] {
                peaks[p.index()] = marking[p.index()];
            }
        }
    }
    Ok((sequence, peaks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_allocations, AllocationOptions, TReduction};
    use fcpn_petri::gallery;

    fn reductions_of(net: &PetriNet) -> Vec<TReduction> {
        enumerate_allocations(net, AllocationOptions::default())
            .unwrap()
            .into_iter()
            .map(|a| TReduction::compute(net, a).unwrap())
            .collect()
    }

    #[test]
    fn figure5_r1_invariants_and_cycle_match_paper() {
        let net = gallery::figure5();
        let t2 = net.transition_by_name("t2").unwrap();
        let reductions = reductions_of(&net);
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        // Check the component invariants the paper quotes: (1,1,0,2,0,4,0,0,0) and
        // (0,0,0,0,0,1,0,1,1) in parent transition order.
        let inv = InvariantAnalysis::of(&r1.net);
        let mut parent_vectors: Vec<Vec<u64>> = inv
            .t_semiflows
            .iter()
            .map(|s| {
                let mut v = vec![0u64; net.transition_count()];
                for (child, &count) in s.vector.iter().enumerate() {
                    let parent = r1.map.parent_transition(TransitionId::new(child));
                    v[parent.index()] = count;
                }
                v
            })
            .collect();
        parent_vectors.sort();
        assert_eq!(
            parent_vectors,
            vec![
                vec![0, 0, 0, 0, 0, 1, 0, 1, 1],
                vec![1, 1, 0, 2, 0, 4, 0, 0, 0],
            ]
        );
        // And the cycle matches the paper's (t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6).
        match check_component(&net, r1) {
            ComponentVerdict::Schedulable(cycle) => {
                assert_eq!(
                    net.format_sequence(&cycle.sequence),
                    "t1 t2 t4 t4 t6 t6 t6 t6 t8 t9 t6"
                );
                assert!(net.is_finite_complete_cycle(net.initial_marking(), &cycle.sequence));
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }

    #[test]
    fn figure5_r2_cycle_matches_paper() {
        let net = gallery::figure5();
        let t3 = net.transition_by_name("t3").unwrap();
        let reductions = reductions_of(&net);
        let r2 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t3))
            .unwrap();
        match check_component(&net, r2) {
            ComponentVerdict::Schedulable(cycle) => {
                assert_eq!(
                    net.format_sequence(&cycle.sequence),
                    "t1 t3 t5 t7 t7 t8 t9 t6"
                );
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }

    #[test]
    fn figure7_components_are_inconsistent() {
        let net = gallery::figure7();
        for reduction in reductions_of(&net) {
            match check_component(&net, &reduction) {
                ComponentVerdict::NotSchedulable(ComponentFailure::Inconsistent { uncovered }) => {
                    assert!(!uncovered.is_empty());
                }
                other => panic!("expected inconsistency, got {other:?}"),
            }
        }
    }

    #[test]
    fn figure3b_components_are_inconsistent() {
        let net = gallery::figure3b();
        for reduction in reductions_of(&net) {
            assert!(!check_component(&net, &reduction).is_schedulable());
        }
    }

    #[test]
    fn deadlock_detected_when_invariant_not_realisable() {
        // A delay-free loop is consistent (x = (1,1) balances it) but cannot fire.
        let mut b = fcpn_petri::NetBuilder::new("deadlock");
        let p1 = b.place("p1", 0);
        let t1 = b.transition("t1");
        let p2 = b.place("p2", 0);
        let t2 = b.transition("t2");
        b.arc_p_t(p1, t1, 1).unwrap();
        b.arc_t_p(t1, p2, 1).unwrap();
        b.arc_p_t(p2, t2, 1).unwrap();
        b.arc_t_p(t2, p1, 1).unwrap();
        let net = b.build().unwrap();
        let reductions = reductions_of(&net);
        assert_eq!(reductions.len(), 1);
        match check_component(&net, &reductions[0]) {
            ComponentVerdict::NotSchedulable(ComponentFailure::Deadlock { remaining, fired }) => {
                assert!(fired.is_empty());
                assert_eq!(remaining.len(), 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn simulate_cycle_respects_priority() {
        let net = gallery::figure4();
        let t2 = net.transition_by_name("t2").unwrap();
        let reductions = reductions_of(&net);
        let r1 = reductions
            .iter()
            .find(|r| r.allocation.allocates(t2))
            .unwrap();
        match check_component(&net, r1) {
            ComponentVerdict::Schedulable(cycle) => {
                // The choice fires as soon as its token arrives: t1 t2 t1 t2 t4.
                assert_eq!(net.format_sequence(&cycle.sequence), "t1 t2 t1 t2 t4");
                assert_eq!(cycle.counts, vec![2, 2, 0, 1, 0]);
            }
            other => panic!("expected schedulable, got {other:?}"),
        }
    }
}
