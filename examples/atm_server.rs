//! The ATM server case study (Section 5): builds the model, schedules it, synthesises the
//! two-task implementation and prints the generated C code.
//!
//! Run with `cargo run --release --example atm_server`.

use fcpn::atm::{AtmConfig, AtmModel};
use fcpn::codegen::{emit_c, synthesize, CEmitOptions, CodeMetrics, SynthesisOptions};
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = AtmModel::build(AtmConfig::paper())?;
    let stats = model.net.stats();
    println!("ATM server model: {stats}");
    for (place, meaning) in &model.choices {
        println!(
            "  choice at {:<16} -- {meaning}",
            model.net.place_name(*place)
        );
    }

    let outcome = quasi_static_schedule(&model.net, &QssOptions::default())?;
    let schedule = match outcome {
        QssOutcome::Schedulable(s) => s,
        QssOutcome::NotSchedulable(report) => {
            eprintln!("model not schedulable: {report}");
            return Ok(());
        }
    };
    println!(
        "valid schedule: {} finite complete cycles (one per resolution of the choices)",
        schedule.cycle_count()
    );

    let program = synthesize(&model.net, &schedule, SynthesisOptions::default())?;
    println!(
        "synthesised {} tasks: {}",
        program.task_count(),
        program
            .tasks
            .iter()
            .map(|t| t.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let metrics = CodeMetrics::of(&program, &model.net);
    println!("{metrics}");

    let c = emit_c(&program, &model.net, CEmitOptions::default());
    println!("---------------- generated C (truncated) ----------------");
    for line in c.lines().take(60) {
        println!("{line}");
    }
    println!("... ({} lines total)", c.lines().count());
    Ok(())
}
