//! Exploring the code-size / buffer-size tradeoff the paper's conclusions point at:
//! for the static (dataflow) part of a specification, compare the flat interleaved
//! schedule against the single-appearance looped schedule, and for the quasi-static part
//! compare the C and Rust back ends.
//!
//! Run with `cargo run --example design_space`.

use fcpn::codegen::{
    emit_c, emit_rust, synthesize, CEmitOptions, RustEmitOptions, SynthesisOptions,
};
use fcpn::petri::gallery;
use fcpn::qss::{quasi_static_schedule, QssOptions};
use fcpn::sdf::{FiringPolicy, LoopedSchedule, ScheduleTradeoff, SdfGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Static part: a 1:4 downsampling chain (FFT-style multirate pipeline). ---
    let mut graph = SdfGraph::new("downsampling-pipeline");
    let src = graph.actor("sample");
    let filt = graph.actor("filter");
    let dec = graph.actor("decimate");
    let out = graph.actor("output");
    graph.channel(src, 1, filt, 1, 0)?;
    graph.channel(filt, 4, dec, 8, 0)?;
    graph.channel(dec, 1, out, 1, 0)?;

    let net = graph.to_petri_net()?;
    let flat = graph.static_schedule(FiringPolicy::DemandDriven)?;
    let looped = LoopedSchedule::single_appearance(&graph)?;
    let tradeoff = ScheduleTradeoff::evaluate(&graph, &flat)?;

    println!("static pipeline `{}`:", graph.name());
    println!("  repetition vector      : {:?}", flat.repetition);
    println!(
        "  flat schedule          : {} ({} appearances, {} buffer tokens)",
        net.format_sequence(&flat.sequence),
        tradeoff.flat_appearances,
        tradeoff.flat_buffer_tokens
    );
    println!(
        "  single-appearance form : {} ({} appearances, {} buffer tokens)",
        looped.describe(&net),
        tradeoff.looped_appearances,
        tradeoff.looped_buffer_tokens
    );

    // --- Quasi-static part: figure 5, emitted to both back ends. ---
    let net = gallery::figure5();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())?
        .schedule()
        .expect("figure 5 is schedulable");
    let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
    let c = emit_c(&program, &net, CEmitOptions::default());
    let rust = emit_rust(&program, &net, RustEmitOptions::default());
    println!();
    println!("quasi-static figure 5:");
    println!(
        "  C back end    : {} non-blank lines",
        c.lines().filter(|l| !l.trim().is_empty()).count()
    );
    println!(
        "  Rust back end : {} non-blank lines",
        rust.lines().filter(|l| !l.trim().is_empty()).count()
    );
    println!();
    println!("--- generated Rust (task_t8) ---");
    let mut printing = false;
    for line in rust.lines() {
        if line.contains("pub fn task_t8") {
            printing = true;
        }
        if printing {
            println!("{line}");
            if line == "}" {
                break;
            }
        }
    }
    Ok(())
}
