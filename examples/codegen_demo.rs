//! Shows the full synthesis pipeline on the paper's Figure 4 net — the same example whose
//! C code Section 4 prints — and then executes the generated program to demonstrate that
//! it preserves the net's semantics.
//!
//! Run with `cargo run --example codegen_demo`.

use fcpn::codegen::{
    emit_c, synthesize, CEmitOptions, FixedResolver, Interpreter, SynthesisOptions,
};
use fcpn::petri::gallery;
use fcpn::qss::{quasi_static_schedule, QssOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = gallery::figure4();
    let schedule = quasi_static_schedule(&net, &QssOptions::default())?
        .schedule()
        .expect("figure 4 is schedulable");
    println!("valid schedule: {}", schedule.describe(&net));

    let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
    println!("generated C:");
    println!("{}", emit_c(&program, &net, CEmitOptions::default()));

    // Execute the generated tasks directly: always take the t2 branch for six input
    // events, then the t3 branch for three more, and report the firing counts.
    let mut interpreter = Interpreter::new(&program, &net);
    let mut take_t2 = FixedResolver { arm: 0 };
    for _ in 0..6 {
        interpreter.run_task(0, &mut take_t2)?;
    }
    let mut take_t3 = FixedResolver { arm: 1 };
    for _ in 0..3 {
        interpreter.run_task(0, &mut take_t3)?;
    }
    println!("fires per transition after 9 input events:");
    for t in net.transitions() {
        println!(
            "  {:<4} fired {:>2} times",
            net.transition_name(t),
            interpreter.fire_counts()[t.index()]
        );
    }
    println!(
        "peak software buffer occupancy: {:?}",
        interpreter.peak_counters()
    );
    Ok(())
}
