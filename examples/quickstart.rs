//! Quickstart: build a Free-Choice net, check schedulability, and synthesise C code.
//!
//! Run with `cargo run --example quickstart`.

use fcpn::codegen::{emit_c, synthesize, CEmitOptions, CodeMetrics, SynthesisOptions};
use fcpn::petri::NetBuilder;
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small packet filter: an input event is classified and either logged (cheap path)
    // or transformed twice and forwarded (multirate path).
    let mut b = NetBuilder::new("packet-filter");
    let input = b.transition("input");
    let classify = b.place("classify", 0);
    let log = b.transition("log");
    let transform = b.transition("transform");
    let staged = b.place("staged", 0);
    let forward = b.transition("forward");
    b.arc_t_p(input, classify, 1)?;
    b.arc_p_t(classify, log, 1)?;
    b.arc_p_t(classify, transform, 1)?;
    b.arc_t_p(transform, staged, 2)?;
    b.arc_p_t(staged, forward, 1)?;
    let net = b.build()?;

    println!("net: {}", net.stats());
    println!("free choice: {}", net.is_free_choice());

    // Quasi-static scheduling: one finite complete cycle per resolution of the choice.
    let outcome = quasi_static_schedule(&net, &QssOptions::default())?;
    let schedule = match outcome {
        QssOutcome::Schedulable(s) => s,
        QssOutcome::NotSchedulable(report) => {
            eprintln!("not schedulable: {report}");
            return Ok(());
        }
    };
    println!("valid schedule: {}", schedule.describe(&net));
    println!(
        "buffer bounds: {:?} (total {} tokens)",
        schedule.buffer_bounds(&net),
        schedule.total_buffer_tokens(&net)
    );

    // Software synthesis: one task per independent-rate input, C code out.
    let program = synthesize(&net, &schedule, SynthesisOptions::default())?;
    let metrics = CodeMetrics::of(&program, &net);
    println!("synthesised {metrics}");
    println!("----------------------------------------");
    println!("{}", emit_c(&program, &net, CEmitOptions::default()));
    Ok(())
}
