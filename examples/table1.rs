//! Regenerates Table I of the paper: QSS versus functional task partitioning on the ATM
//! server, for a 50-cell testbench.
//!
//! Run with `cargo run --release --example table1`.

use fcpn::atm::{run_table1, AtmConfig, AtmModel, Table1Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = AtmModel::build(AtmConfig::paper())?;
    let table = run_table1(&model, &Table1Config::default())?;
    println!("Table I (reproduction, relative numbers — see EXPERIMENTS.md):");
    println!("{table}");
    println!(
        "valid schedule cycles: {} | task activations: QSS {} vs functional {} | cycle ratio {:.2}",
        table.schedule_cycles,
        table.qss.activations,
        table.functional.activations,
        table.cycle_ratio()
    );
    println!(
        "paper reference:      tasks 2 vs 5, lines 1664 vs 2187, cycles 197526 vs 249726 (ratio 1.26)"
    );
    if table.qss_wins() {
        println!("shape reproduced: QSS wins on tasks, code size and cycles.");
    } else {
        println!("WARNING: QSS did not win on every metric.");
    }
    Ok(())
}
