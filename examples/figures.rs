//! Reproduces every worked example (figures 1–7) of the paper and prints what the paper
//! states about each one.
//!
//! Run with `cargo run --example figures`.

use fcpn::petri::analysis::{Classification, InvariantAnalysis};
use fcpn::petri::gallery;
use fcpn::qss::{quasi_static_schedule, QssOptions, QssOutcome};
use fcpn::sdf::{schedule_conflict_free, FiringPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: free choice vs not free choice.
    let fig1a = gallery::figure1a();
    let fig1b = gallery::figure1b();
    println!(
        "figure 1a `{}` -> {}",
        fig1a.name(),
        Classification::of(&fig1a).class
    );
    println!(
        "figure 1b `{}` -> {}",
        fig1b.name(),
        Classification::of(&fig1b).class
    );

    // Figure 2: static (fully compile-time) schedule of a multirate chain.
    let fig2 = gallery::figure2();
    let invariants = InvariantAnalysis::of(&fig2);
    println!(
        "figure 2 minimal T-invariant: {:?}",
        invariants.t_semiflows[0].vector
    );
    let schedule = schedule_conflict_free(&fig2, &[4, 2, 1], FiringPolicy::Eager)?;
    println!(
        "figure 2 static schedule: {}",
        fig2.format_sequence(&schedule.sequence)
    );

    // Figures 3a/3b, 4, 5, 7: quasi-static schedulability.
    for net in [
        gallery::figure3a(),
        gallery::figure3b(),
        gallery::figure4(),
        gallery::figure5(),
        gallery::figure7(),
    ] {
        match quasi_static_schedule(&net, &QssOptions::default())? {
            QssOutcome::Schedulable(s) => {
                println!("{}: schedulable, S = {}", net.name(), s.describe(&net));
            }
            QssOutcome::NotSchedulable(report) => {
                println!("{}: NOT schedulable ({report})", net.name());
            }
        }
    }

    // Figure 6: the Reduction Algorithm trace for R1 of figure 5.
    let fig5 = gallery::figure5();
    let allocations =
        fcpn::qss::enumerate_allocations(&fig5, fcpn::qss::AllocationOptions::default())?;
    let t2 = fig5.transition_by_name("t2").expect("t2 exists");
    let a1 = allocations
        .into_iter()
        .find(|a| a.allocates(t2))
        .expect("A1 allocates t2");
    let reduction = fcpn::qss::TReduction::compute(&fig5, a1)?;
    println!("figure 6 (reduction of figure 5 under A1):");
    println!("{}", reduction.describe_trace(&fig5));
    Ok(())
}
